package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/change"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/rules"
	"repro/internal/usage"
)

// Evaluation bundles a mined-and-analyzed corpus so that several figures
// can be regenerated without re-running the expensive analysis.
type Evaluation struct {
	DiffCode *DiffCode
	Corpus   *corpus.Corpus
	Analyzed []*AnalyzedChange

	classOnce sync.Mutex
	classRes  map[string]*ClassPipelineResult
}

// NewEvaluation mines and analyzes the corpus once.
func NewEvaluation(c *corpus.Corpus, opts Options) *Evaluation {
	return NewEvaluationCtx(context.Background(), c, opts)
}

// NewEvaluationCtx is NewEvaluation with trace propagation: under a traced
// ctx the mining run attaches its span tree (mine → analyze → per-change
// spans) to the current span. On an untraced ctx this is exactly
// NewEvaluation.
func NewEvaluationCtx(ctx context.Context, c *corpus.Corpus, opts Options) *Evaluation {
	// The evaluation harness re-classifies changes against both raw analysis
	// results (Figure 7 needs Old/New), which warm artifact hits do not
	// carry — so the harness always analyzes live.
	opts.Artifacts = nil
	d := New(opts)
	return &Evaluation{
		DiffCode: d,
		Corpus:   c,
		Analyzed: d.MineCorpusCtx(ctx, c),
		classRes: map[string]*ClassPipelineResult{},
	}
}

// classResult memoizes per-class pipeline runs.
func (e *Evaluation) classResult(class string) *ClassPipelineResult {
	e.classOnce.Lock()
	defer e.classOnce.Unlock()
	if r, ok := e.classRes[class]; ok {
		return r
	}
	r := e.DiffCode.RunClass(e.Analyzed, class)
	e.classRes[class] = &r
	return &r
}

// ---------------------------------------------------------------------------
// Figure 6 — usage changes per target class after each filter stage
// ---------------------------------------------------------------------------

// Figure6 regenerates the filtering table.
func (e *Evaluation) Figure6() *report.Table {
	t := &report.Table{
		Title:  "Figure 6: usage changes per target API class after abstraction and filtering",
		Header: []string{"Target API Class", "Usage Changes", "fsame", "fadd", "frem", "fdup"},
	}
	totalAll, totalKept := 0, 0
	for _, class := range cryptoapi.TargetClasses {
		r := e.classResult(class)
		s := r.Stats
		t.AddRow(class, fmt.Sprint(s.Total), fmt.Sprint(s.AfterSame),
			fmt.Sprint(s.AfterAdd), fmt.Sprint(s.AfterRem), fmt.Sprint(s.AfterDup))
		totalAll += s.Total
		totalKept += s.AfterDup
	}
	if totalAll > 0 {
		t.AddNote("Filtered as non-semantic or duplicate: %s of %d usage changes.",
			report.Pct(totalAll-totalKept, totalAll), totalAll)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 7 — security fixes vs buggy changes under CL1–CL5
// ---------------------------------------------------------------------------

// Figure7Row is the per-rule, per-classification filter attrition.
type Figure7Row struct {
	Rule      string
	Type      rules.ChangeType
	Total     int
	ByFsame   int
	ByFadd    int
	ByFrem    int
	ByFdup    int
	Remaining int
}

// Figure7Data computes the classification table backing Figure 7.
func (e *Evaluation) Figure7Data() []Figure7Row {
	type key struct {
		rule string
		typ  rules.ChangeType
	}
	acc := map[key]*Figure7Row{}
	get := func(rule string, typ rules.ChangeType) *Figure7Row {
		k := key{rule, typ}
		if r, ok := acc[k]; ok {
			return r
		}
		r := &Figure7Row{Rule: rule, Type: typ}
		acc[k] = r
		return r
	}
	for _, cl := range rules.CryptoLint() {
		class := cl.Clauses[0].Class
		for _, a := range e.Analyzed {
			if !a.UsesClass(class) {
				continue
			}
			typ := rules.Classify(cl, a.Old, a.New, rules.Context{})
			ucs := e.DiffCode.ExtractClass(a, class)
			row := get(cl.ID, typ)
			for i := range ucs {
				c := &ucs[i]
				row.Total++
				switch {
				case c.IsSame():
					row.ByFsame++
				case c.IsAddOnly():
					row.ByFadd++
				case c.IsRemoveOnly():
					row.ByFrem++
				default:
					row.Remaining++ // fdup handled below per rule+type
				}
			}
		}
	}
	// Deduplicate the survivors per (rule, type) to account for fdup.
	for _, cl := range rules.CryptoLint() {
		class := cl.Clauses[0].Class
		for _, typ := range []rules.ChangeType{rules.SecurityFix, rules.BuggyChange, rules.NonSemantic} {
			row := get(cl.ID, typ)
			seen := map[string]bool{}
			unique := 0
			for _, a := range e.Analyzed {
				if !a.UsesClass(class) {
					continue
				}
				if rules.Classify(cl, a.Old, a.New, rules.Context{}) != typ {
					continue
				}
				for _, c := range e.DiffCode.ExtractClass(a, class) {
					if c.IsSame() || c.IsAddOnly() || c.IsRemoveOnly() {
						continue
					}
					k := c.Key()
					if !seen[k] {
						seen[k] = true
						unique++
					}
				}
			}
			row.ByFdup = row.Remaining - unique
			row.Remaining = unique
		}
	}
	var out []Figure7Row
	for _, cl := range rules.CryptoLint() {
		for _, typ := range []rules.ChangeType{rules.SecurityFix, rules.BuggyChange, rules.NonSemantic} {
			out = append(out, *get(cl.ID, typ))
		}
	}
	return out
}

// Figure7 renders the classification table.
func (e *Evaluation) Figure7() *report.Table {
	t := &report.Table{
		Title:  "Figure 7: security fixes, buggy changes, and non-semantic changes under CL1-CL5",
		Header: []string{"Rule", "Type", "Total", "fsame", "fadd", "frem", "fdup", "Remaining"},
	}
	rows := e.Figure7Data()
	var fixes, bugs int
	for _, r := range rows {
		t.AddRow(r.Rule, r.Type.String(), fmt.Sprint(r.Total), fmt.Sprint(r.ByFsame),
			fmt.Sprint(r.ByFadd), fmt.Sprint(r.ByFrem), fmt.Sprint(r.ByFdup),
			fmt.Sprint(r.Remaining))
		switch r.Type {
		case rules.SecurityFix:
			fixes += r.Total
		case rules.BuggyChange:
			bugs += r.Total
		}
	}
	if fixes+bugs > 0 {
		t.AddNote("Rule-flipping code changes that are security fixes: %s (the paper counts pre-dedup changes).",
			report.Pct(fixes, fixes+bugs))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 8 — dendrogram for the Cipher class
// ---------------------------------------------------------------------------

// Figure8Result carries the dendrogram and the detected ECB cluster.
type Figure8Result struct {
	Survivors  []change.UsageChange
	Dendrogram *cluster.Node
	// ECBCluster indexes survivors that form the "stop using ECB" cluster
	// eliciting rule R7.
	ECBCluster []int
	Rendering  string
}

// Figure8 clusters the surviving Cipher usage changes and locates the
// ECB→CBC/GCM cluster of the paper's Figure 8.
func (e *Evaluation) Figure8() *Figure8Result {
	r := e.classResult(cryptoapi.Cipher)
	root := e.DiffCode.ClusterChanges(r.Survivors)
	res := &Figure8Result{Survivors: r.Survivors, Dendrogram: root}
	if root == nil {
		return res
	}
	for _, cl := range root.Cut(0.75) {
		ecb := 0
		for _, i := range cl {
			if removesECB(r.Survivors[i]) {
				ecb++
			}
		}
		if ecb*2 > len(cl) && ecb >= 2 {
			res.ECBCluster = cl
			break
		}
	}
	res.Rendering = cluster.Render(root, func(i int) string {
		c := r.Survivors[i]
		return fmt.Sprintf("[%s] %s", c.Meta.Commit, summarize(c))
	})
	return res
}

// removesECB reports whether a usage change removes an (explicit or
// implicit) ECB-mode getInstance feature — "AES", "AES/ECB/...", or bare
// "DES" all run the block cipher in ECB.
func removesECB(c change.UsageChange) bool {
	for _, p := range c.Removed {
		if len(p) >= 3 && p[1] == "getInstance" {
			if s, ok := argString(p[2]); ok {
				if cryptoapi.ParseTransformation(s).EffectiveMode() == "ECB" {
					return true
				}
			}
		}
	}
	return false
}

// argString extracts the quoted payload of an `argN:"..."` label.
func argString(label string) (string, bool) {
	i := strings.Index(label, `:"`)
	if i < 0 || !strings.HasSuffix(label, `"`) {
		return "", false
	}
	return label[i+2 : len(label)-1], true
}

// summarize renders a usage change on one line.
func summarize(c change.UsageChange) string {
	var parts []string
	for _, p := range c.Removed {
		parts = append(parts, "-"+strings.Join(p[1:], " "))
	}
	for _, p := range c.Added {
		parts = append(parts, "+"+strings.Join(p[1:], " "))
	}
	s := strings.Join(parts, "  ")
	if len(s) > 140 {
		s = s[:137] + "..."
	}
	return s
}

// ---------------------------------------------------------------------------
// Figure 9 — the elicited rules
// ---------------------------------------------------------------------------

// Figure9 renders the rule registry.
func Figure9() *report.Table {
	t := &report.Table{
		Title:  "Figure 9: security rules derived from security fixes applied to the Java Crypto API",
		Header: []string{"ID", "Description", "Rule"},
	}
	for _, r := range rules.All() {
		t.AddRow(r.ID, r.Description, r.Formula)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 10 — rule violations across projects
// ---------------------------------------------------------------------------

// Figure10Row is the per-rule applicability/matching outcome.
type Figure10Row struct {
	Rule       string
	Applicable int
	Matching   int
}

// Figure10Result holds the checker evaluation.
type Figure10Result struct {
	Projects           int
	Rows               []Figure10Row
	ViolatedAtLeastOne int
}

// Figure10 runs CryptoChecker over every project snapshot.
func (e *Evaluation) Figure10() *Figure10Result {
	return CheckCorpus(e.Corpus, e.DiffCode.Options())
}

// CheckCorpus evaluates the 13 rules over all project snapshots of a
// corpus (training + held-out) on the worker pool (one project per task,
// ordered fan-in). Forks are excluded, as in the paper's project selection
// (§6.1: "excluding forks").
func CheckCorpus(c *corpus.Corpus, opts Options) *Figure10Result {
	opts = opts.withDefaults()
	all := rules.All()
	var projects []*corpus.Project
	for _, p := range c.Projects {
		if p.ForkOf == "" {
			projects = append(projects, p)
		}
	}
	type projOutcome struct {
		applicable map[string]bool
		matching   map[string]bool
	}
	outcomes := parallel.Map(opts.pool(), context.Background(), len(projects), func(i int) projOutcome {
		p := projects[i]
		res := analysis.Analyze(analysis.ParseProgram(p.Files), opts.Analysis)
		ctx := ContextOf(p)
		o := projOutcome{applicable: map[string]bool{}, matching: map[string]bool{}}
		for _, r := range all {
			if r.Applicable(res, ctx) {
				o.applicable[r.ID] = true
			}
			if ok, _ := r.Matches(res, ctx); ok {
				o.matching[r.ID] = true
			}
		}
		return o
	})
	res := &Figure10Result{Projects: len(projects)}
	for _, r := range all {
		row := Figure10Row{Rule: r.ID}
		for _, o := range outcomes {
			if o.applicable[r.ID] {
				row.Applicable++
			}
			if o.matching[r.ID] {
				row.Matching++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for _, o := range outcomes {
		if len(o.matching) > 0 {
			res.ViolatedAtLeastOne++
		}
	}
	return res
}

// Table renders the Figure 10 result.
func (r *Figure10Result) Table() *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Figure 10: rule violations for the %d analyzed projects", r.Projects),
		Header: []string{"Rule", "Applicable (% of total)", "Matching (% of appl.)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Rule, report.Count(row.Applicable, r.Projects),
			report.Count(row.Matching, row.Applicable))
	}
	t.AddNote("Projects violating at least one rule: %s.",
		report.Pct(r.ViolatedAtLeastOne, r.Projects))
	return t
}

// ---------------------------------------------------------------------------
// Headline numbers (§1 / §6 claims)
// ---------------------------------------------------------------------------

// Headline summarizes the paper's three headline claims against this run.
type Headline struct {
	FilteredPct    float64 // >99% of usage changes filtered
	FixPct         float64 // >80% of rule-flipping semantic changes are fixes
	ViolatedPct    float64 // >57% of projects violate ≥1 rule
	TotalChanges   int
	TotalSurviving int
}

// ComputeHeadline derives the headline numbers from figure runs.
func (e *Evaluation) ComputeHeadline(fig10 *Figure10Result) Headline {
	h := Headline{}
	for _, class := range cryptoapi.TargetClasses {
		s := e.classResult(class).Stats
		h.TotalChanges += s.Total
		h.TotalSurviving += s.AfterDup
	}
	if h.TotalChanges > 0 {
		h.FilteredPct = 100 * float64(h.TotalChanges-h.TotalSurviving) / float64(h.TotalChanges)
	}
	// The paper's ">80% are security fixes" claim counts rule-flipping code
	// changes before deduplication (its Figure 7 Total column).
	var fixes, bugs int
	for _, row := range e.Figure7Data() {
		switch row.Type {
		case rules.SecurityFix:
			fixes += row.Total
		case rules.BuggyChange:
			bugs += row.Total
		}
	}
	if fixes+bugs > 0 {
		h.FixPct = 100 * float64(fixes) / float64(fixes+bugs)
	}
	if fig10 != nil && fig10.Projects > 0 {
		h.ViolatedPct = 100 * float64(fig10.ViolatedAtLeastOne) / float64(fig10.Projects)
	}
	return h
}

// SortedSurvivors returns the surviving changes of a class, ordered by
// provenance for stable output.
func (e *Evaluation) SortedSurvivors(class string) []change.UsageChange {
	r := e.classResult(class)
	out := append([]change.UsageChange{}, r.Survivors...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Meta.Project != out[j].Meta.Project {
			return out[i].Meta.Project < out[j].Meta.Project
		}
		return out[i].Meta.Commit < out[j].Meta.Commit
	})
	return out
}

// BuildDAGs exposes usage-DAG construction at the facade level (used by
// the quickstart example).
func BuildDAGs(src string, class string, opts Options) []*usage.Graph {
	opts = opts.withDefaults()
	res := analysis.AnalyzeSource(src, opts.Analysis)
	return usage.BuildAll(res, class, opts.Depth)
}
