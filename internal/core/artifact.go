package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/artifact"
	"repro/internal/change"
	"repro/internal/cryptoapi"
	"repro/internal/javatok"
	"repro/internal/mining"
	"repro/internal/resilience"
	"repro/internal/rules"
	"repro/internal/usage"
	"repro/internal/witness"
)

// This file wires the content-addressed artifact store (internal/artifact)
// into the pipeline. Three artifact classes are cached:
//
//   - per-change analysis artifacts (KindAnalysis): the per-class usage
//     changes extracted from both versions, keyed by (old source, new
//     source, options fingerprint) — a warm corpus run re-analyzes only
//     new or changed commits;
//   - whole check outcomes (KindCheck): violations + witness traces, keyed
//     by sources, rule-set identity, rule context, and effective -why —
//     the analysis server's repeated-snippet fast path;
//   - per-file parse artifacts (KindParse) via
//     analysis.ParseProgramStoreCtx, keyed by content alone.
//
// The nil-store path is the exact pre-artifact pipeline, and a warm hit
// reconstructs byte-identical output: artifacts store only data every
// consumer derives its output from (usage paths, rule IDs, object sites,
// traces), never pointers into a live analysis.

// optFingerprint renders the option fields that influence analysis results
// into the artifact key material. Worker count and failure policy are
// deliberately absent — results are identical at any -workers value, so
// artifacts are shared across them.
func optFingerprint(o Options) string {
	a := o.Analysis.Normalized()
	// Summaries participate because they lift the MaxInline cliff: results
	// can differ past depth 4, so on/off address distinct artifacts.
	return fmt.Sprintf("depth=%d;maxstates=%d;maxinline=%d;budgetsteps=%d;budgetwall=%d;prov=%t;summaries=%t",
		o.Depth, a.MaxStates, a.MaxInline, o.BudgetSteps, int64(o.BudgetWall), a.Provenance, !o.DisableSummaries)
}

// rulesFingerprint renders a rule set's identity: ID, formula, and
// description of every rule in evaluation order. Predicates are closures
// and cannot be hashed; the formula string is their authored identity, and
// editing a rule's behavior without touching its formula or description is
// the one cache-correctness obligation left with the rule author.
func rulesFingerprint(ruleSet []*rules.Rule) string {
	var sb strings.Builder
	for _, r := range ruleSet {
		sb.WriteString(r.ID)
		sb.WriteByte(0x1f)
		sb.WriteString(r.Formula)
		sb.WriteByte(0x1f)
		sb.WriteString(r.Description)
		sb.WriteByte(0x1e)
	}
	return sb.String()
}

// phaseError carries the pipeline phase of a failed analysis through the
// store's single-flight layer (waiters of a shared failing compute still
// ledger the right phase).
type phaseError struct {
	phase resilience.Phase
	err   error
}

func (e *phaseError) Error() string { return e.err.Error() }
func (e *phaseError) Unwrap() error { return e.err }

// ---------------------------------------------------------------------------
// Per-change analysis artifacts
// ---------------------------------------------------------------------------

// usagePaths is the serialized form of one change.UsageChange, minus the
// class (the map key) and the meta (injected at instantiation, so forks and
// duplicate commits share one artifact).
type usagePaths struct {
	Rem []usage.Path `json:"rem,omitempty"`
	Add []usage.Path `json:"add,omitempty"`
}

// changeArtifact is the cached outcome of analyzing one code change: the
// usage changes of every target class either version mentions, extracted at
// the pipeline's depth. Filtering, deduplication, and clustering all derive
// from these paths, so a warm run needs neither the ASTs nor the abstract
// interpretation.
type changeArtifact struct {
	Classes map[string][]usagePaths `json:"classes"`
}

func decodeChangeArtifact(b []byte) (any, error) {
	var art changeArtifact
	if err := json.Unmarshal(b, &art); err != nil {
		return nil, err
	}
	if art.Classes == nil {
		art.Classes = map[string][]usagePaths{}
	}
	return &art, nil
}

// instantiate rebuilds the usage changes of one class, stamping the
// caller's meta. The path slices are shared read-only with the artifact —
// every downstream consumer (filter, cluster, report) only iterates them.
func (art *changeArtifact) instantiate(class string, meta change.Meta) []change.UsageChange {
	ps := art.Classes[class]
	if len(ps) == 0 {
		return nil
	}
	out := make([]change.UsageChange, len(ps))
	for i, p := range ps {
		out[i] = change.UsageChange{Class: class, Removed: p.Rem, Added: p.Add, Meta: meta}
	}
	return out
}

// buildChangeArtifact extracts every used class of a freshly analyzed
// change into artifact form. A panic during extraction makes the change
// uncacheable (ok=false) rather than a poisoned artifact: the live results
// stay on the AnalyzedChange and RunClass reproduces — and ledgers — the
// extraction failure exactly as the storeless pipeline would.
func (d *DiffCode) buildChangeArtifact(a *AnalyzedChange, cc mining.CodeChange) (*changeArtifact, bool) {
	art := &changeArtifact{Classes: map[string][]usagePaths{}}
	for _, class := range cryptoapi.TargetClasses {
		if !mining.UsesClass(cc.Old, class) && !mining.UsesClass(cc.New, class) {
			continue
		}
		class := class
		err := resilience.Guard("artifact "+class, func() error {
			ucs := change.Extract(a.Old, a.New, class, d.opts.Depth, change.Meta{})
			ps := make([]usagePaths, len(ucs))
			for i, uc := range ucs {
				ps[i] = usagePaths{Rem: uc.Removed, Add: uc.Added}
			}
			art.Classes[class] = ps
			return nil
		})
		if err != nil {
			return nil, false
		}
	}
	return art, true
}

// changeOutcome is what one analyzed change's store flight resolves to:
// the artifact (non-nil on every cacheable success) and — on a cold
// compute — the live analysis results, kept so extraction-time failures
// and result-consuming callers see exactly the storeless pipeline.
type changeOutcome struct {
	art      *changeArtifact
	old, new *analysis.Result
}

// analyzedOutcome resolves one change through the artifact store: warm hits
// return the artifact, misses run the live analysis under per-key
// single-flight (a duplicate-heavy batch analyzes each distinct content
// hash once at any worker count) and cache the extraction.
func (d *DiffCode) analyzedOutcome(ctx context.Context, cc mining.CodeChange) (*changeOutcome, resilience.Phase, error) {
	st := d.opts.Artifacts
	k := artifact.NewKey(artifact.KindAnalysis, d.optFP, cc.Old, cc.New)
	v, err := st.Do(artifact.KindAnalysis, k, func() (any, error) {
		if av, ok := st.Get(artifact.KindAnalysis, k, decodeChangeArtifact); ok {
			return &changeOutcome{art: av.(*changeArtifact)}, nil
		}
		d.opts.Metrics.Counter("artifact.analysis.computes").Inc()
		a, phase, err := d.analyzeChangeLive(ctx, cc)
		if err != nil {
			return nil, &phaseError{phase: phase, err: err}
		}
		oc := &changeOutcome{old: a.Old, new: a.New}
		if art, ok := d.buildChangeArtifact(a, cc); ok {
			oc.art = art
			st.Put(artifact.KindAnalysis, k, art, func() ([]byte, error) { return json.Marshal(art) })
		}
		return oc, nil
	})
	if err != nil {
		var pe *phaseError
		if errors.As(err, &pe) {
			return nil, pe.phase, pe.err
		}
		return nil, resilience.PhaseAnalyze, err
	}
	return v.(*changeOutcome), "", nil
}

// ---------------------------------------------------------------------------
// Check-outcome artifacts
// ---------------------------------------------------------------------------

// checkObj is the serialized identity of one witnessing abstract object —
// exactly the fields every consumer renders (SiteLabel, site line/column).
type checkObj struct {
	ID   int         `json:"id"`
	Type string      `json:"type"`
	Site javatok.Pos `json:"site"`
}

// checkViolation references its rule by ID; reconstruction resolves the ID
// against the checker's live rule set, so a cached outcome always carries
// the current rule metadata.
type checkViolation struct {
	Rule string     `json:"rule"`
	Objs []checkObj `json:"objs"`
}

// checkArtifact is a whole cached check outcome. Traces round-trip as-is
// (they are plain renderable data); violation evidence does not need to —
// it is consumed at witness-collection time, and the traces are stored
// post-collection.
type checkArtifact struct {
	Violations []checkViolation `json:"violations"`
	Traces     []witness.Trace  `json:"traces,omitempty"`
}

func decodeCheckArtifact(b []byte) (any, error) {
	var art checkArtifact
	if err := json.Unmarshal(b, &art); err != nil {
		return nil, err
	}
	return &art, nil
}

func buildCheckArtifact(out *CheckOutcome) *checkArtifact {
	art := &checkArtifact{Traces: out.Traces}
	for _, v := range out.Violations {
		cv := checkViolation{Rule: v.Rule.ID, Objs: make([]checkObj, len(v.Objs))}
		for i, o := range v.Objs {
			cv.Objs[i] = checkObj{ID: o.ID, Type: o.Type, Site: o.Site}
		}
		art.Violations = append(art.Violations, cv)
	}
	return art
}

// reconstructCheck rebuilds a CheckOutcome from its artifact. Result stays
// nil — the analysis never ran; callers needing the raw result (the -v
// explain path) run without outcome caching.
func (c *CryptoChecker) reconstructCheck(art *checkArtifact) *CheckOutcome {
	byID := make(map[string]*rules.Rule, len(c.Rules))
	for _, r := range c.Rules {
		byID[r.ID] = r
	}
	out := &CheckOutcome{Traces: art.Traces}
	for _, cv := range art.Violations {
		r := byID[cv.Rule]
		if r == nil {
			// A rule that vanished from the live set (key collision across
			// mismatched fingerprints cannot happen; this is belt and
			// braces) — drop the stale violation rather than panic.
			continue
		}
		objs := make([]*absdom.AObj, len(cv.Objs))
		for i, o := range cv.Objs {
			objs[i] = &absdom.AObj{ID: o.ID, Type: o.Type, Site: o.Site}
		}
		out.Violations = append(out.Violations, rules.Violation{Rule: r, Objs: objs})
	}
	return out
}

// checkKey derives the content address of one check: options, rule set,
// rule context, effective -why (post-degrade), and the sorted source
// bundle.
func (c *CryptoChecker) checkKey(sources map[string]string, rctx rules.Context, why bool) artifact.Key {
	parts := make([]string, 0, 3+2*len(sources))
	parts = append(parts, c.optFP, c.rulesFP,
		fmt.Sprintf("android=%t;minsdk=%d;lprng=%t;why=%t", rctx.Android, rctx.MinSDKVersion, rctx.HasLPRNG, why))
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		parts = append(parts, n, sources[n])
	}
	return artifact.NewKey(artifact.KindCheck, parts...)
}

// checkFlight is what one check's store flight resolves to: the leader and
// its concurrent waiters share the live outcome (Result included); warm
// hitters get the artifact and reconstruct.
type checkFlight struct {
	out *CheckOutcome
	art *checkArtifact
}

// checkOutcome dispatches one request-scoped check through the artifact
// store; with no store it is exactly the live check. Errors are never
// cached — a panicking snippet or an exhausted budget re-runs on retry.
func (c *CryptoChecker) checkOutcome(ctx context.Context, sources map[string]string, rctx rules.Context, why bool) (*CheckOutcome, error) {
	st := c.opts.Artifacts
	if st == nil {
		return c.checkLive(ctx, sources, rctx, why)
	}
	k := c.checkKey(sources, rctx, why)
	v, err := st.Do(artifact.KindCheck, k, func() (any, error) {
		if av, ok := st.Get(artifact.KindCheck, k, decodeCheckArtifact); ok {
			return &checkFlight{art: av.(*checkArtifact)}, nil
		}
		out, err := c.checkLive(ctx, sources, rctx, why)
		if err != nil {
			return nil, err
		}
		art := buildCheckArtifact(out)
		st.Put(artifact.KindCheck, k, art, func() ([]byte, error) { return json.Marshal(art) })
		return &checkFlight{out: out, art: art}, nil
	})
	if err != nil {
		return nil, err
	}
	f := v.(*checkFlight)
	if f.out != nil {
		return f.out, nil
	}
	return c.reconstructCheck(f.art), nil
}
