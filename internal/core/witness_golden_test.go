package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rules"
	"repro/internal/witness"
)

// witnessExamples maps every registered rule to a violating example under
// examples/violations and the project context it fires in. The CL reference
// rules share the example of the R rule they re-label.
var witnessExamples = map[string]struct {
	file string
	ctx  rules.Context
}{
	"R1":  {file: "R1.java"},
	"R2":  {file: "R2.java"},
	"R3":  {file: "R3.java"},
	"R4":  {file: "R4.java"},
	"R5":  {file: "R5.java"},
	"R6":  {file: "R6.java", ctx: rules.Context{Android: true, MinSDKVersion: 17}},
	"R7":  {file: "R7.java"},
	"R8":  {file: "R8.java"},
	"R9":  {file: "R9.java"},
	"R10": {file: "R10.java"},
	"R11": {file: "R11.java"},
	"R12": {file: "R12.java"},
	"R13": {file: "R13.java"},
	"CL1": {file: "R7.java"},
	"CL2": {file: "R9.java"},
	"CL3": {file: "R10.java"},
	"CL4": {file: "R2.java"},
	"CL5": {file: "R11.java"},
}

func loadExample(t *testing.T, name string) map[string]string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "examples", "violations", name))
	if err != nil {
		t.Fatalf("example: %v", err)
	}
	// Key by base name so traces (and goldens) carry stable file names.
	return map[string]string{name: string(b)}
}

func whyTraces(t *testing.T, r *rules.Rule, workers int) []witness.Trace {
	t.Helper()
	ex := witnessExamples[r.ID]
	checker := NewChecker([]*rules.Rule{r}, Options{Workers: workers})
	vs, traces := checker.CheckSourcesWhy(loadExample(t, ex.file), ex.ctx)
	if len(vs) == 0 {
		t.Fatalf("%s: example %s does not violate the rule", r.ID, ex.file)
	}
	return traces
}

// TestWitnessGoldenAllRules pins the rendered witness trace of one
// violating example per registered rule — all 13 elicited rules and the
// five CryptoLint reference rules. Refresh with:
//
//	go test ./internal/core -run WitnessGolden -update-golden
func TestWitnessGoldenAllRules(t *testing.T) {
	for _, r := range append(rules.All(), rules.CryptoLint()...) {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if _, ok := witnessExamples[r.ID]; !ok {
				t.Fatalf("no example registered for rule %s", r.ID)
			}
			traces := whyTraces(t, r, 1)
			if len(traces) == 0 {
				t.Fatal("no witness traces")
			}
			for _, tr := range traces {
				if tr.Rule != r.ID {
					t.Errorf("trace rule = %s, want %s", tr.Rule, r.ID)
				}
				if len(tr.Steps) == 0 {
					t.Fatal("empty trace")
				}
				if sink := tr.Sink(); sink.Kind != "sink" || sink.Line == 0 {
					t.Errorf("trace does not end at a positioned sink: %+v", sink)
				}
				if tr.Explanation == "" {
					t.Error("trace carries no explanation")
				}
			}
			got := witness.Render(traces)
			path := filepath.Join("testdata", "witness", r.ID+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("witness trace drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
					got, want)
			}
		})
	}
}

// TestWitnessDeterminismAcrossWorkers asserts the rendered traces of every
// rule's example are byte-identical at workers 1 and 8.
func TestWitnessDeterminismAcrossWorkers(t *testing.T) {
	for _, r := range append(rules.All(), rules.CryptoLint()...) {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			want := witness.Render(whyTraces(t, r, 1))
			if got := witness.Render(whyTraces(t, r, 8)); got != want {
				t.Errorf("workers=8 traces differ from workers=1\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestWitnessJSONStable asserts the JSON rendering round-trips and is
// identical across worker counts (the machine-readable -why=json contract).
func TestWitnessJSONStable(t *testing.T) {
	want := witness.JSON(whyTraces(t, rules.R10, 1))
	if !strings.Contains(want, "\"rule\": \"R10\"") {
		t.Fatalf("JSON missing rule field:\n%s", want)
	}
	if got := witness.JSON(whyTraces(t, rules.R10, 8)); got != want {
		t.Errorf("workers=8 JSON differs from workers=1")
	}
}
