// Package core wires the substrates into the two systems of the paper:
// DiffCode (mine → analyze → abstract → diff → filter → cluster, §5) and
// CryptoChecker (the rule checker of §6.4). The evaluation harness that
// regenerates the paper's figures lives in eval.go.
package core

import (
	"runtime"
	"sync"

	"repro/internal/analysis"
	"repro/internal/change"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/mining"
	"repro/internal/rules"
	"repro/internal/usage"
)

// Options configures the DiffCode pipeline.
type Options struct {
	// Depth bounds the usage-DAG expansion (paper default: 5).
	Depth int
	// Analysis forwards analyzer limits.
	Analysis analysis.Options
	// MinCommits filters toy projects during mining (paper: 30).
	MinCommits int
	// Workers caps the parallel analysis fan-out (default: NumCPU).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = usage.DefaultDepth
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// DiffCode is the end-to-end system of §5.
type DiffCode struct {
	opts Options
}

// New returns a DiffCode instance.
func New(opts Options) *DiffCode {
	return &DiffCode{opts: opts.withDefaults()}
}

// Options returns the effective configuration.
func (d *DiffCode) Options() Options { return d.opts }

// AnalyzedChange is a mined code change with both versions analyzed. The
// raw sources are retained so the concrete patch behind a usage change can
// be inspected (the paper's manual elicitation step).
type AnalyzedChange struct {
	Meta   change.Meta
	Kind   corpus.CommitKind
	OldSrc string
	NewSrc string
	Old    *analysis.Result
	New    *analysis.Result
	// UsesOld/UsesNew record which target classes each version mentions
	// (pre-filter granularity, before abstraction).
	UsesOld map[string]bool
	UsesNew map[string]bool
}

// UsesClass reports whether either version uses the class.
func (a *AnalyzedChange) UsesClass(class string) bool {
	return a.UsesOld[class] || a.UsesNew[class]
}

// AnalyzeChange parses and analyzes one code change.
func (d *DiffCode) AnalyzeChange(cc mining.CodeChange) *AnalyzedChange {
	a := &AnalyzedChange{
		Meta:    cc.Meta,
		Kind:    cc.Kind,
		OldSrc:  cc.Old,
		NewSrc:  cc.New,
		Old:     analysis.AnalyzeSource(cc.Old, d.opts.Analysis),
		New:     analysis.AnalyzeSource(cc.New, d.opts.Analysis),
		UsesOld: map[string]bool{},
		UsesNew: map[string]bool{},
	}
	for _, c := range cryptoapi.TargetClasses {
		a.UsesOld[c] = mining.UsesClass(cc.Old, c)
		a.UsesNew[c] = mining.UsesClass(cc.New, c)
	}
	return a
}

// AnalyzeAll analyzes a batch of code changes in parallel, preserving
// input order.
func (d *DiffCode) AnalyzeAll(ccs []mining.CodeChange) []*AnalyzedChange {
	out := make([]*AnalyzedChange, len(ccs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, d.opts.Workers)
	for i := range ccs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = d.AnalyzeChange(ccs[i])
		}(i)
	}
	wg.Wait()
	return out
}

// ExtractClass derives the usage changes of one target class from an
// analyzed change.
func (d *DiffCode) ExtractClass(a *AnalyzedChange, class string) []change.UsageChange {
	return change.Extract(a.Old, a.New, class, d.opts.Depth, a.Meta)
}

// MineCorpus runs the full mining front-end over a corpus: collect code
// changes, analyze both versions of each, in parallel.
func (d *DiffCode) MineCorpus(c *corpus.Corpus) []*AnalyzedChange {
	ccs := mining.Collect(c, mining.Options{MinCommits: d.opts.MinCommits})
	return d.AnalyzeAll(ccs)
}

// ClassPipelineResult is the per-class outcome of the filtering pipeline.
type ClassPipelineResult struct {
	Class     string
	Stats     change.FilterStats
	Survivors []change.UsageChange
}

// RunClass extracts, filters, and returns the semantic usage changes of one
// target class across analyzed changes.
func (d *DiffCode) RunClass(analyzed []*AnalyzedChange, class string) ClassPipelineResult {
	var all []change.UsageChange
	for _, a := range analyzed {
		if !a.UsesClass(class) {
			continue
		}
		all = append(all, d.ExtractClass(a, class)...)
	}
	kept, stats := change.Filter(all)
	return ClassPipelineResult{Class: class, Stats: stats, Survivors: kept}
}

// ClusterChanges builds the dendrogram over semantic usage changes
// (complete linkage, per the paper).
func (d *DiffCode) ClusterChanges(changes []change.UsageChange) *cluster.Node {
	return cluster.Agglomerate(changes, cluster.Complete)
}

// ---------------------------------------------------------------------------
// CryptoChecker
// ---------------------------------------------------------------------------

// CryptoChecker checks programs against a rule set (§6.4).
type CryptoChecker struct {
	Rules []*rules.Rule
	opts  Options
}

// NewChecker returns a checker over the given rules (default: all 13).
func NewChecker(ruleSet []*rules.Rule, opts Options) *CryptoChecker {
	if len(ruleSet) == 0 {
		ruleSet = rules.All()
	}
	return &CryptoChecker{Rules: ruleSet, opts: opts.withDefaults()}
}

// CheckSources analyzes the given files as one program and reports all rule
// violations.
func (c *CryptoChecker) CheckSources(sources map[string]string, ctx rules.Context) []rules.Violation {
	res := analysis.Analyze(analysis.ParseProgram(sources), c.opts.Analysis)
	return rules.Check(res, ctx, c.Rules)
}

// CheckProject checks a corpus project snapshot.
func (c *CryptoChecker) CheckProject(p *corpus.Project) []rules.Violation {
	return c.CheckSources(p.Files, ContextOf(p))
}

// ContextOf converts corpus project metadata into a rule context.
func ContextOf(p *corpus.Project) rules.Context {
	return rules.Context{
		Android:       p.Info.Android,
		MinSDKVersion: p.Info.MinSDKVersion,
		HasLPRNG:      p.Info.HasLPRNG,
	}
}
