// Package core wires the substrates into the two systems of the paper:
// DiffCode (mine → analyze → abstract → diff → filter → cluster, §5) and
// CryptoChecker (the rule checker of §6.4). The evaluation harness that
// regenerates the paper's figures lives in eval.go.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/artifact"
	"repro/internal/change"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/distcache"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/resilience"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trace"
	"repro/internal/usage"
	"repro/internal/witness"
)

// Options configures the DiffCode pipeline.
type Options struct {
	// Depth bounds the usage-DAG expansion (paper default: 5).
	Depth int
	// Analysis forwards analyzer limits.
	Analysis analysis.Options
	// MinCommits filters toy projects during mining (paper: 30).
	MinCommits int
	// Workers sizes the worker pool behind batch analysis, clustering, and
	// checking (default: GOMAXPROCS). Workers == 1 is the exact serial
	// path: no goroutines, no pool telemetry, byte-identical output to the
	// single-threaded pipeline. Any worker count produces identical results
	// (the parallel layer is deterministic); only wall-clock time changes.
	Workers int
	// BudgetSteps caps the abstract-interpretation steps spent on one mined
	// change (both versions share the budget); 0 means unlimited. Changes
	// that exhaust it are skipped and recorded in the ledger.
	BudgetSteps int64
	// BudgetWall caps the wall-clock time spent on one mined change;
	// 0 means unlimited.
	BudgetWall time.Duration
	// FailFast stops a batch analysis after the first recorded failure.
	FailFast bool
	// MaxErrors aborts a batch once this many failures have been recorded
	// (0 means unlimited).
	MaxErrors int
	// Ledger receives the skip-and-record entries of this pipeline; nil
	// means New creates a private one (reachable via DiffCode.Ledger).
	Ledger *resilience.Ledger
	// Metrics receives stage telemetry (spans, counters, histograms) for
	// the whole pipeline; nil disables all instrumentation at the cost of
	// one nil check per probe.
	Metrics *obs.Registry
	// DisableDistCache turns off the memoized distance engine behind
	// clustering and elicitation (the -dist-cache CLI toggle). The zero
	// value keeps the cache on; results are bit-identical either way — the
	// cache only changes how often the distance kernels run.
	DisableDistCache bool
	// Artifacts, when non-nil, is the content-addressed artifact store
	// behind the incremental pipeline (the -cache-dir CLI toggle): parse
	// results, per-change analysis extractions, and check outcomes are
	// cached by content hash and reused across runs. Nil (the default)
	// disables artifact caching entirely — the exact pre-artifact pipeline.
	// Output is byte-identical with the store on or off; only how often
	// the parser, interpreter, and checker run changes.
	Artifacts *artifact.Store
	// DisableSummaries turns off memoized per-method summaries (the
	// -summaries=false CLI toggle) and restores the exact legacy
	// interpreter: every callee re-inlined at every call site, reach
	// bounded by Analysis.MaxInline. With summaries on (the default) hot
	// helpers are interpreted once per distinct abstract input and the
	// depth bound is lifted (cycle detection replaces it), so results can
	// legitimately differ on programs with helper chains deeper than
	// MaxInline — the two modes therefore address distinct analysis
	// artifacts.
	DisableSummaries bool
	// Summaries, when non-nil, is the shared summary table of this run;
	// nil (the default) makes New/NewChecker build one over
	// Artifacts/Metrics unless DisableSummaries is set. A server passes
	// one process-lifetime table so requests share summaries in memory.
	Summaries *summary.Table
}

// pool builds the worker pool the pipeline's batch stages dispatch onto.
// A fresh pool is a cheap two-word struct; the workers themselves only
// exist while a batch is in flight.
func (o Options) pool() *parallel.Pool { return parallel.New(o.Workers, o.Metrics) }

func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = usage.DefaultDepth
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Analysis.Metrics == nil {
		o.Analysis.Metrics = o.Metrics
	}
	if o.DisableSummaries {
		o.Summaries = nil
	} else if o.Summaries == nil {
		o.Summaries = summary.NewTable(o.Artifacts, o.Metrics)
	}
	o.Analysis.Summaries = o.Summaries
	return o
}

// DiffCode is the end-to-end system of §5.
type DiffCode struct {
	opts   Options
	ledger *resilience.Ledger
	engine *distcache.Engine
	// optFP fingerprints the result-shaping options once; it prefixes
	// every analysis-artifact key this instance derives.
	optFP string
}

// New returns a DiffCode instance.
func New(opts Options) *DiffCode {
	opts = opts.withDefaults()
	l := opts.Ledger
	if l == nil {
		l = resilience.NewLedger()
	}
	d := &DiffCode{opts: opts, ledger: l, optFP: optFingerprint(opts)}
	if !opts.DisableDistCache {
		d.engine = distcache.New(opts.Metrics)
	}
	return d
}

// Options returns the effective configuration.
func (d *DiffCode) Options() Options { return d.opts }

// Ledger returns the failure ledger recording every change or project the
// pipeline skipped instead of dying on.
func (d *DiffCode) Ledger() *resilience.Ledger { return d.ledger }

// Metrics returns the pipeline's registry (nil when uninstrumented).
func (d *DiffCode) Metrics() *obs.Registry { return d.opts.Metrics }

// Engine returns the memoized distance engine behind clustering and
// elicitation (nil when Options.DisableDistCache is set — the nil engine is
// the uncached path).
func (d *DiffCode) Engine() *distcache.Engine { return d.engine }

// AnalyzedChange is a mined code change with both versions analyzed. The
// raw sources are retained so the concrete patch behind a usage change can
// be inspected (the paper's manual elicitation step).
type AnalyzedChange struct {
	Meta   change.Meta
	Kind   corpus.CommitKind
	OldSrc string
	NewSrc string
	Old    *analysis.Result
	New    *analysis.Result
	// UsesOld/UsesNew record which target classes each version mentions
	// (pre-filter granularity, before abstraction).
	UsesOld map[string]bool
	UsesNew map[string]bool
	// art holds the cached per-class extraction when the change resolved
	// through the artifact store; on a warm hit Old/New stay nil and
	// ExtractClass instantiates from here instead.
	art *changeArtifact
}

// UsesClass reports whether either version uses the class.
func (a *AnalyzedChange) UsesClass(class string) bool {
	return a.UsesOld[class] || a.UsesNew[class]
}

// taskName renders the ledger/guard identity of a mined change.
func taskName(cc mining.CodeChange) string {
	m := cc.Meta
	switch {
	case m.Project != "" && m.Commit != "":
		return fmt.Sprintf("change %s@%s:%s", m.Project, m.Commit, m.File)
	case m.File != "":
		return "change " + m.File
	default:
		return "change"
	}
}

// AnalyzeChange parses and analyzes one code change. A panic anywhere in
// parsing or analysis, or an exhausted per-change budget, is returned as an
// error instead of propagating.
func (d *DiffCode) AnalyzeChange(cc mining.CodeChange) (*AnalyzedChange, error) {
	a, _, err := d.analyzeChange(context.Background(), cc)
	return a, err
}

// AnalyzeChangeCtx is AnalyzeChange bound to a request context: the
// per-change budget is tightened by ctx's deadline and the analysis aborts
// early (resilience.ErrCanceled) once ctx is canceled. This is the
// request-scoped entry point behind the analysis server's /v1/analyze.
func (d *DiffCode) AnalyzeChangeCtx(ctx context.Context, cc mining.CodeChange) (*AnalyzedChange, error) {
	a, _, err := d.analyzeChange(ctx, cc)
	return a, err
}

// analyzeChange is AnalyzeChange plus the pipeline phase a failure belongs
// to (parse vs analyze) for ledger bookkeeping. When ctx carries a trace
// span, the parse and the two interpreter runs appear as child spans and a
// failure annotates ctx's span with its ledger category. With an artifact
// store configured the change resolves through analyzedOutcome — a warm
// hit skips parse and interpretation entirely (and so creates none of
// their spans) while producing an identical AnalyzedChange downstream.
func (d *DiffCode) analyzeChange(ctx context.Context, cc mining.CodeChange) (*AnalyzedChange, resilience.Phase, error) {
	var a *AnalyzedChange
	if d.opts.Artifacts == nil {
		var phase resilience.Phase
		var err error
		a, phase, err = d.analyzeChangeLive(ctx, cc)
		if err != nil {
			trace.FromContext(ctx).Annotate(string(resilience.Categorize(err)))
			return nil, phase, err
		}
	} else {
		oc, phase, err := d.analyzedOutcome(ctx, cc)
		if err != nil {
			trace.FromContext(ctx).Annotate(string(resilience.Categorize(err)))
			return nil, phase, err
		}
		a = &AnalyzedChange{
			Meta:   cc.Meta,
			Kind:   cc.Kind,
			OldSrc: cc.Old,
			NewSrc: cc.New,
			Old:    oc.old,
			New:    oc.new,
			art:    oc.art,
		}
	}
	d.opts.Metrics.Counter("analysis.changes_analyzed").Inc()
	a.UsesOld, a.UsesNew = map[string]bool{}, map[string]bool{}
	for _, c := range cryptoapi.TargetClasses {
		a.UsesOld[c] = mining.UsesClass(cc.Old, c)
		a.UsesNew[c] = mining.UsesClass(cc.New, c)
	}
	return a, "", nil
}

// analyzeChangeLive parses and interprets both versions of one change —
// the storeless pipeline body, also run (under single-flight) on an
// artifact miss. Callers fill the Uses maps and count changes_analyzed.
func (d *DiffCode) analyzeChangeLive(ctx context.Context, cc mining.CodeChange) (*AnalyzedChange, resilience.Phase, error) {
	task := taskName(cc)
	reg := d.opts.Metrics
	var progOld, progNew *analysis.Program
	sp := reg.StartSpanTask("parse", task)
	err := resilience.Guard(task+" [parse]", func() error {
		progOld = analysis.ParseProgramPoolCtx(ctx, map[string]string{"Main.java": cc.Old}, reg, nil)
		progNew = analysis.ParseProgramPoolCtx(ctx, map[string]string{"Main.java": cc.New}, reg, nil)
		return nil
	})
	sp.End()
	if err != nil {
		return nil, resilience.PhaseParse, err
	}
	a := &AnalyzedChange{
		Meta:   cc.Meta,
		Kind:   cc.Kind,
		OldSrc: cc.Old,
		NewSrc: cc.New,
	}
	sp = reg.StartSpanTask("analyze", task)
	err = resilience.Guard(task, func() error {
		// Both versions share one budget: the unit of skipping is the change.
		aopts := d.opts.Analysis
		aopts.Budget = resilience.NewBudgetContext(ctx, d.opts.BudgetSteps, d.opts.BudgetWall)
		old, err := analysis.AnalyzeBudgetedCtx(ctx, progOld, aopts)
		if err != nil {
			return err
		}
		nw, err := analysis.AnalyzeBudgetedCtx(ctx, progNew, aopts)
		if err != nil {
			return err
		}
		a.Old, a.New = old, nw
		return nil
	})
	sp.End()
	if err != nil {
		return nil, resilience.PhaseAnalyze, err
	}
	return a, "", nil
}

// record files a failure for a mined change in the ledger.
func (d *DiffCode) record(cc mining.CodeChange, phase resilience.Phase, err error) {
	e := resilience.NewEntry(taskName(cc), phase, err)
	e.Meta = map[string]string{
		"project": cc.Meta.Project,
		"commit":  cc.Meta.Commit,
		"file":    cc.Meta.File,
	}
	d.ledger.Record(e)
}

// AnalyzeAll analyzes a batch of code changes on the pipeline's worker
// pool, preserving input order (slot i holds change i — the pool's ordered
// fan-in). Failing changes are skipped and recorded in the ledger, leaving
// a nil slot at their index; Options.FailFast and Options.MaxErrors abort
// the remainder of the batch via cooperative cancellation (no new change is
// dispatched once the failure threshold is reached; in-flight changes
// finish and keep their slots). Workers == 1 runs the exact serial path.
func (d *DiffCode) AnalyzeAll(ccs []mining.CodeChange) []*AnalyzedChange {
	return d.AnalyzeAllCtx(context.Background(), ccs)
}

// AnalyzeAllCtx is AnalyzeAll with trace propagation: when tctx carries a
// span, the batch runs under an "analyze" child with one "change[i]" span
// per change (ordered by input index at any worker count), each annotated
// with its ledger failure category when the change is skipped. Only the
// span propagates from tctx — the batch keeps its own cancellation
// lifecycle, exactly as before.
func (d *DiffCode) AnalyzeAllCtx(tctx context.Context, ccs []mining.CodeChange) []*AnalyzedChange {
	d.opts.Metrics.Gauge("pipeline.workers").Set(int64(d.opts.Workers))
	out := make([]*AnalyzedChange, len(ccs))
	bctx, bsp := trace.Start(tctx, "analyze")
	defer bsp.End()
	ctx, cancel := context.WithCancel(trace.Detach(bctx))
	defer cancel()
	var failures atomic.Int64
	// Budgets inside the batch deliberately stay unbound from the cancel
	// context: fail-fast/max-errors stop dispatching new changes, but
	// in-flight changes finish and keep their slots (the documented abort
	// semantics, and what keeps aborted-run output deterministic). Detach
	// strips the fail-fast cancellation before it reaches a change's budget
	// while keeping the task span as the parent of the change's spans.
	d.opts.pool().ForEachCtx(ctx, "change", len(ccs), func(cctx context.Context, i int) {
		a, phase, err := d.analyzeChange(trace.Detach(cctx), ccs[i])
		if err != nil {
			d.record(ccs[i], phase, err)
			n := failures.Add(1)
			if d.opts.FailFast || (d.opts.MaxErrors > 0 && n >= int64(d.opts.MaxErrors)) {
				cancel()
			}
			return
		}
		out[i] = a
	})
	return out
}

// ExtractClass derives the usage changes of one target class from an
// analyzed change. A change that resolved through the artifact store
// instantiates its cached extraction (stamping this change's meta);
// otherwise the extraction runs live on the analysis results.
func (d *DiffCode) ExtractClass(a *AnalyzedChange, class string) []change.UsageChange {
	if a.art != nil {
		return a.art.instantiate(class, a.Meta)
	}
	return change.Extract(a.Old, a.New, class, d.opts.Depth, a.Meta)
}

// MineCorpus runs the full mining front-end over a corpus: collect code
// changes, analyze both versions of each, in parallel. Changes the
// resilience layer skipped are dropped from the result (they are recorded
// in the ledger), so downstream stages see only analyzed changes.
func (d *DiffCode) MineCorpus(c *corpus.Corpus) []*AnalyzedChange {
	return d.MineCorpusCtx(context.Background(), c)
}

// MineCorpusCtx is MineCorpus with trace propagation: the collection runs
// under a "mine" child span carrying the mined-change count, and the batch
// analysis under AnalyzeAllCtx's "analyze" span.
func (d *DiffCode) MineCorpusCtx(ctx context.Context, c *corpus.Corpus) []*AnalyzedChange {
	sp := d.opts.Metrics.StartSpan("mine")
	_, msp := trace.Start(ctx, "mine")
	ccs := mining.Collect(c, mining.Options{MinCommits: d.opts.MinCommits, Metrics: d.opts.Metrics})
	msp.SetAttr("changes", fmt.Sprint(len(ccs)))
	msp.End()
	sp.End()
	analyzed := d.AnalyzeAllCtx(ctx, ccs)
	out := make([]*AnalyzedChange, 0, len(analyzed))
	for _, a := range analyzed {
		if a != nil {
			out = append(out, a)
		}
	}
	return out
}

// ClassPipelineResult is the per-class outcome of the filtering pipeline.
type ClassPipelineResult struct {
	Class     string
	Stats     change.FilterStats
	Survivors []change.UsageChange
}

// RunClass extracts, filters, and returns the semantic usage changes of one
// target class across analyzed changes. Nil slots (changes the resilience
// layer skipped) are ignored; a panic while extracting one change skips
// that change and records it, rather than aborting the class.
func (d *DiffCode) RunClass(analyzed []*AnalyzedChange, class string) ClassPipelineResult {
	return d.RunClassCtx(context.Background(), analyzed, class)
}

// RunClassCtx is RunClass with trace propagation: the extract and filter
// stages appear as child spans carrying the class name and survivor counts.
func (d *DiffCode) RunClassCtx(ctx context.Context, analyzed []*AnalyzedChange, class string) ClassPipelineResult {
	reg := d.opts.Metrics
	var all []change.UsageChange
	_, xsp := trace.Start(ctx, "extract")
	xsp.SetAttr("class", class)
	esp := reg.StartSpanTask("extract", class)
	for _, a := range analyzed {
		if a == nil || !a.UsesClass(class) {
			continue
		}
		a := a
		task := fmt.Sprintf("extract %s %s@%s:%s", class, a.Meta.Project, a.Meta.Commit, a.Meta.File)
		err := resilience.Guard(task, func() error {
			all = append(all, d.ExtractClass(a, class)...)
			return nil
		})
		if err != nil {
			d.ledger.Record(resilience.NewEntry(task, resilience.PhaseExtract, err))
		}
	}
	esp.End()
	xsp.SetAttr("usage_changes", fmt.Sprint(len(all)))
	xsp.End()
	reg.Counter("extract.usage_changes").Add(int64(len(all)))
	_, psp := trace.Start(ctx, "filter")
	psp.SetAttr("class", class)
	fsp := reg.StartSpanTask("filter", class)
	kept, stats := change.Filter(all)
	fsp.End()
	psp.SetAttr("survivors", fmt.Sprint(len(kept)))
	psp.End()
	reg.Counter("filter.usage_changes").Add(int64(stats.Total))
	reg.Counter("filter.survivors").Add(int64(len(kept)))
	return ClassPipelineResult{Class: class, Stats: stats, Survivors: kept}
}

// ClusterChanges builds the dendrogram over semantic usage changes
// (complete linkage, per the paper). The distance matrix and the per-merge
// scans run row-chunked on the pipeline's worker pool, and the distance
// kernels run through the memoized engine unless Options.DisableDistCache
// is set; the dendrogram is identical at any worker count and with the
// cache on or off.
func (d *DiffCode) ClusterChanges(changes []change.UsageChange) *cluster.Node {
	return d.ClusterChangesCtx(context.Background(), changes)
}

// ClusterChangesCtx is ClusterChanges with trace propagation: the whole
// agglomeration runs under a "cluster" child span carrying the input size
// (the distance-matrix fan-out below it is deliberately not per-task traced
// — an O(n²) stage would dominate the span tree without adding attribution).
func (d *DiffCode) ClusterChangesCtx(ctx context.Context, changes []change.UsageChange) *cluster.Node {
	sp := d.opts.Metrics.StartSpan("cluster")
	_, csp := trace.Start(ctx, "cluster")
	csp.SetAttr("changes", fmt.Sprint(len(changes)))
	root := cluster.AgglomerateEngine(changes, cluster.Complete, d.opts.Metrics, d.opts.pool(), d.engine)
	csp.End()
	sp.End()
	return root
}

// ---------------------------------------------------------------------------
// CryptoChecker
// ---------------------------------------------------------------------------

// CryptoChecker checks programs against a rule set (§6.4).
type CryptoChecker struct {
	Rules []*rules.Rule
	opts  Options
	// optFP/rulesFP fingerprint the checker's options and rule set once;
	// together they prefix every check-outcome artifact key.
	optFP   string
	rulesFP string
}

// NewChecker returns a checker over the given rules (default: all 13).
func NewChecker(ruleSet []*rules.Rule, opts Options) *CryptoChecker {
	if len(ruleSet) == 0 {
		ruleSet = rules.All()
	}
	opts = opts.withDefaults()
	return &CryptoChecker{
		Rules:   ruleSet,
		opts:    opts,
		optFP:   optFingerprint(opts),
		rulesFP: rulesFingerprint(ruleSet),
	}
}

// CheckSources analyzes the given files as one program and reports all rule
// violations. The per-file parse and the per-rule evaluation fan out on the
// checker's worker pool (the abstract interpretation between them analyzes
// the whole program and stays single-goroutine); violations come back in
// the stable rule-set order regardless of worker count.
func (c *CryptoChecker) CheckSources(sources map[string]string, ctx rules.Context) []rules.Violation {
	return c.CheckSourcesCtx(context.Background(), sources, ctx)
}

// CheckSourcesCtx is CheckSources with trace propagation: under a traced
// tctx the program runs as a "check" child span with parse, interpret, and
// rules stages below it. On an untraced tctx this is exactly CheckSources.
func (c *CryptoChecker) CheckSourcesCtx(tctx context.Context, sources map[string]string, ctx rules.Context) []rules.Violation {
	reg := c.opts.Metrics
	pool := c.opts.pool()
	sp := reg.StartSpan("check")
	cctx, csp := trace.Start(tctx, "check")
	prog := analysis.ParseProgramStoreCtx(cctx, sources, reg, pool, c.opts.Artifacts)
	res, _ := analysis.AnalyzeBudgetedCtx(cctx, prog, c.opts.Analysis)
	violations := rules.CheckPoolCtx(cctx, res, ctx, c.Rules, pool)
	csp.End()
	sp.End()
	reg.Counter("checker.programs").Inc()
	reg.Counter("checker.rules_evaluated").Add(int64(len(c.Rules)))
	reg.Counter("checker.violations").Add(int64(len(violations)))
	return violations
}

// CheckSourcesWhy is CheckSources with witness reconstruction: the analysis
// runs with provenance tracking enabled, the violations come back sorted by
// source location (file, line, rule ID — the -why report order), and every
// violation carries its witness traces. Provenance is observation-only, so
// the violation *set* is exactly CheckSources'; only the order of the
// returned slice and the extra traces differ.
func (c *CryptoChecker) CheckSourcesWhy(sources map[string]string, ctx rules.Context) ([]rules.Violation, []witness.Trace) {
	return c.CheckSourcesWhyCtx(context.Background(), sources, ctx)
}

// CheckSourcesWhyCtx is CheckSourcesWhy with the same trace propagation as
// CheckSourcesCtx, plus a "witness" stage span for the reconstruction.
func (c *CryptoChecker) CheckSourcesWhyCtx(tctx context.Context, sources map[string]string, ctx rules.Context) ([]rules.Violation, []witness.Trace) {
	reg := c.opts.Metrics
	pool := c.opts.pool()
	sp := reg.StartSpan("check")
	cctx, csp := trace.Start(tctx, "check")
	aopts := c.opts.Analysis
	aopts.Provenance = true
	prog := analysis.ParseProgramStoreCtx(cctx, sources, reg, pool, c.opts.Artifacts)
	res, _ := analysis.AnalyzeBudgetedCtx(cctx, prog, aopts)
	violations := rules.CheckPoolCtx(cctx, res, ctx, c.Rules, pool)
	csp.End()
	sp.End()
	reg.Counter("checker.programs").Inc()
	reg.Counter("checker.rules_evaluated").Add(int64(len(c.Rules)))
	reg.Counter("checker.violations").Add(int64(len(violations)))
	sorted := report.SortViolations(violations, res)
	_, wsp := trace.Start(tctx, "witness")
	traces := witness.Collect(sorted, res, ctx)
	wsp.SetAttr("traces", fmt.Sprint(len(traces)))
	wsp.End()
	witness.Observe(reg, traces)
	return sorted, traces
}

// CheckProject checks a corpus project snapshot.
func (c *CryptoChecker) CheckProject(p *corpus.Project) []rules.Violation {
	return c.CheckSources(p.Files, ContextOf(p))
}

// CheckOutcome is the result of one request-scoped check.
type CheckOutcome struct {
	Violations []rules.Violation
	// Traces holds the witness traces when the request asked for them; the
	// violations are then in report order (file, line, rule ID). Nil when
	// witnesses were not requested.
	Traces []witness.Trace
	Result *analysis.Result
}

// CheckRequest is the request-scoped entry point behind the analysis
// server's /v1/check: one guarded, budgeted, cancelable check of a source
// bundle. The whole parse+analyze+check runs under resilience.Guard, so a
// panic on a pathological snippet comes back as a categorizable error
// instead of killing the serving process, and the per-request budget is
// tightened by ctx's deadline and trips early if ctx is canceled (a
// disconnected client stops paying for analysis nobody will read).
func (c *CryptoChecker) CheckRequest(ctx context.Context, sources map[string]string, rctx rules.Context, why bool) (*CheckOutcome, error) {
	out, err := c.checkOutcome(ctx, sources, rctx, why)
	if err != nil {
		return nil, err
	}
	// Per-request accounting fires once for every request served — the live
	// leader, its single-flight waiters, and warm artifact hits alike.
	reg := c.opts.Metrics
	reg.Counter("checker.programs").Inc()
	reg.Counter("checker.rules_evaluated").Add(int64(len(c.Rules)))
	reg.Counter("checker.violations").Add(int64(len(out.Violations)))
	if why {
		witness.Observe(reg, out.Traces)
	}
	return out, nil
}

// checkLive runs one guarded, budgeted, cancelable check — the storeless
// CheckRequest body, also run (under single-flight) on an artifact miss.
// Per-request counters and witness observation live in CheckRequest.
func (c *CryptoChecker) checkLive(ctx context.Context, sources map[string]string, rctx rules.Context, why bool) (*CheckOutcome, error) {
	reg := c.opts.Metrics
	pool := c.opts.pool()
	out := &CheckOutcome{}
	sp := reg.StartSpan("check")
	cctx, csp := trace.Start(ctx, "check")
	err := resilience.Guard("check", func() error {
		aopts := c.opts.Analysis
		aopts.Budget = resilience.NewBudgetContext(ctx, c.opts.BudgetSteps, c.opts.BudgetWall)
		aopts.Provenance = why
		res, err := analysis.AnalyzeBudgetedCtx(cctx, analysis.ParseProgramStoreCtx(cctx, sources, reg, pool, c.opts.Artifacts), aopts)
		if err != nil {
			return err
		}
		out.Result = res
		out.Violations = rules.CheckPoolCtx(cctx, res, rctx, c.Rules, pool)
		if why {
			out.Violations = report.SortViolations(out.Violations, res)
			_, wsp := trace.Start(cctx, "witness")
			out.Traces = witness.Collect(out.Violations, res, rctx)
			wsp.SetAttr("traces", fmt.Sprint(len(out.Traces)))
			wsp.End()
		}
		return nil
	})
	if err != nil {
		csp.Annotate(string(resilience.Categorize(err)))
	}
	csp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ContextOf converts corpus project metadata into a rule context.
func ContextOf(p *corpus.Project) rules.Context {
	return rules.Context{
		Android:       p.Info.Android,
		MinSDKVersion: p.Info.MinSDKVersion,
		HasLPRNG:      p.Info.HasLPRNG,
	}
}
