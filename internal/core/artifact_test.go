package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/change"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/rules"
)

// The artifact suite pins the incremental-pipeline contracts: per-key
// single-flight under concurrency (duplicate work collapses to one compute),
// and precise invalidation (exactly the mutated source, option, or rule set
// misses — nothing else). The `artifact.analysis.computes` counter is the
// oracle throughout: it increments only inside the cache-miss compute body,
// so computes == distinct keys proves no duplicate analysis ran and
// computes == 0 proves a run was fully warm.

// cipherChange renders one parseable Java change pair keyed by an algorithm
// tag: distinct tags give distinct (Old, New) contents and so distinct
// artifact keys.
func cipherChange(tag string) (string, string) {
	old := fmt.Sprintf(`
class A {
    void m(Key k) throws Exception {
        Cipher c = Cipher.getInstance("DES%s");
        c.init(Cipher.ENCRYPT_MODE, k);
    }
}
`, tag)
	new := fmt.Sprintf(`
class A {
    void m(Key k) throws Exception {
        Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding%s");
        c.init(Cipher.ENCRYPT_MODE, k);
    }
}
`, tag)
	return old, new
}

// duplicateHeavyBatch builds batchSize changes spanning only distinct
// different contents, round-robin, with unique commit metadata per change
// (meta is not part of the artifact key, so duplicates share a key).
func duplicateHeavyBatch(batchSize, distinct int) []mining.CodeChange {
	ccs := make([]mining.CodeChange, batchSize)
	for i := range ccs {
		old, new := cipherChange(fmt.Sprintf("-%d", i%distinct))
		ccs[i] = mining.CodeChange{
			Meta: change.Meta{Project: "p", Commit: fmt.Sprintf("c%02d", i), File: "A.java"},
			Old:  old, New: new,
		}
	}
	return ccs
}

// TestArtifactSingleFlightRaceHammer hammers a duplicate-heavy batch through
// AnalyzeAll at one and at four workers (run under -race in CI) and asserts
// the per-key single-flight contract: the number of live analyses equals the
// number of distinct (old, new) keys — concurrent duplicates wait for the
// leader instead of recomputing — while every change still resolves.
func TestArtifactSingleFlightRaceHammer(t *testing.T) {
	const batch, distinct = 24, 3
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := obs.NewRegistry()
			st := artifact.New(artifact.Config{Metrics: reg})
			d := New(Options{Workers: workers, Metrics: reg, Artifacts: st})
			analyzed := d.AnalyzeAll(duplicateHeavyBatch(batch, distinct))
			for i, a := range analyzed {
				if a == nil {
					t.Fatalf("change %d skipped unexpectedly", i)
				}
			}
			s := obs.TakeSnapshot(reg, false)
			if got := s.Counters["artifact.analysis.computes"]; got != distinct {
				t.Errorf("computes = %d, want %d (one per distinct key)", got, distinct)
			}
			if got := s.Counters["analysis.changes_analyzed"]; got != batch {
				t.Errorf("changes_analyzed = %d, want %d", got, batch)
			}
			// Everyone but the per-key leaders resolved without computing:
			// either a plain cache hit (sequential duplicate) or a shared
			// single-flight result (concurrent duplicate).
			hits := s.Counters["artifact.analysis.hits"]
			shared := s.Counters["artifact.singleflight.shared"]
			if hits+shared < batch-distinct {
				t.Errorf("hits(%d) + singleflight.shared(%d) < %d: some duplicate was recomputed",
					hits, shared, batch-distinct)
			}

			// A second DiffCode over the same store is fully warm: zero new
			// computes, every change an artifact hit.
			warm := New(Options{Workers: workers, Metrics: reg, Artifacts: st})
			for i, a := range warm.AnalyzeAll(duplicateHeavyBatch(batch, distinct)) {
				if a == nil {
					t.Fatalf("warm change %d skipped unexpectedly", i)
				}
			}
			s2 := obs.TakeSnapshot(reg, false)
			if got := s2.Counters["artifact.analysis.computes"]; got != distinct {
				t.Errorf("computes after warm rerun = %d, want still %d", got, distinct)
			}
			if got := s2.Counters["artifact.analysis.hits"]; got < hits+batch {
				t.Errorf("warm rerun added %d analysis hits, want >= %d", got-hits, batch)
			}
		})
	}
}

// invalidationBatch is the 20-change corpus of the invalidation tests: all
// contents distinct, so cold computes == len(batch).
func invalidationBatch() []mining.CodeChange {
	return duplicateHeavyBatch(20, 20)
}

// runBatch analyzes the batch against a fresh disk-backed store over dir and
// returns the artifact.analysis hit/miss/compute counters of that run alone.
func runBatch(t *testing.T, dir string, ccs []mining.CodeChange, opts Options) (hits, misses, computes int) {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Metrics = reg
	opts.Artifacts = artifact.New(artifact.Config{Dir: dir, Metrics: reg})
	d := New(opts)
	analyzed := d.AnalyzeAll(ccs)
	for i, a := range analyzed {
		if a == nil {
			t.Fatalf("change %d skipped unexpectedly", i)
		}
	}
	s := obs.TakeSnapshot(reg, false)
	return int(s.Counters["artifact.analysis.hits"]),
		int(s.Counters["artifact.analysis.misses"]),
		int(s.Counters["artifact.analysis.computes"])
}

// TestArtifactInvalidationSourceMutation pins the precision of source-keyed
// invalidation over a 20-change corpus: a fully warm re-run computes nothing,
// and mutating a single change's new version re-computes exactly that change
// while the other 19 stay warm.
func TestArtifactInvalidationSourceMutation(t *testing.T) {
	dir := t.TempDir()
	ccs := invalidationBatch()
	opts := Options{Workers: 2}

	if _, _, computes := runBatch(t, dir, ccs, opts); computes != len(ccs) {
		t.Fatalf("cold run computes = %d, want %d", computes, len(ccs))
	}
	hits, misses, computes := runBatch(t, dir, ccs, opts)
	if computes != 0 || misses != 0 || hits != len(ccs) {
		t.Fatalf("warm run hits/misses/computes = %d/%d/%d, want %d/0/0", hits, misses, computes, len(ccs))
	}

	mutated := invalidationBatch()
	mutated[7].New = strings.Replace(mutated[7].New, "PKCS5Padding", "NoPadding", 1)
	hits, misses, computes = runBatch(t, dir, mutated, opts)
	if computes != 1 || misses != 1 || hits != len(ccs)-1 {
		t.Errorf("one-file mutation hits/misses/computes = %d/%d/%d, want %d/1/1",
			hits, misses, computes, len(ccs)-1)
	}
}

// TestArtifactInvalidationOptionMutation asserts the options fingerprint
// isolates artifact reuse: changing an analysis-relevant option (the
// expansion depth, then the step budget) over a warm store misses every
// key, while changing only the worker count — deliberately excluded from
// the fingerprint — stays fully warm.
func TestArtifactInvalidationOptionMutation(t *testing.T) {
	dir := t.TempDir()
	ccs := invalidationBatch()

	if _, _, computes := runBatch(t, dir, ccs, Options{Workers: 2}); computes != len(ccs) {
		t.Fatalf("cold run computes = %d, want %d", computes, len(ccs))
	}
	if hits, _, computes := runBatch(t, dir, ccs, Options{Workers: 8}); computes != 0 || hits != len(ccs) {
		t.Errorf("workers-only change hits/computes = %d/%d, want %d/0 (workers excluded from fingerprint)",
			hits, computes, len(ccs))
	}
	if hits, misses, computes := runBatch(t, dir, ccs, Options{Workers: 2, Depth: 3}); computes != len(ccs) || hits != 0 {
		t.Errorf("depth change hits/misses/computes = %d/%d/%d, want 0/%d/%d",
			hits, misses, computes, len(ccs), len(ccs))
	}
	if hits, _, computes := runBatch(t, dir, ccs, Options{Workers: 2, BudgetSteps: 1 << 30}); computes != len(ccs) || hits != 0 {
		t.Errorf("budget change hits/computes = %d/%d, want 0/%d", hits, computes, len(ccs))
	}
	// The mutated-option artifacts landed beside the originals; the original
	// option set is still fully warm.
	if hits, _, computes := runBatch(t, dir, ccs, Options{Workers: 2}); computes != 0 || hits != len(ccs) {
		t.Errorf("original options after option churn hits/computes = %d/%d, want %d/0",
			hits, computes, len(ccs))
	}
}

// checkerSources is a small program that violates R5 (DES) and R7 (implicit
// ECB) — enough for check artifacts to carry a non-empty violation list
// through the cache.
func checkerSources() map[string]string {
	old, _ := cipherChange("")
	return map[string]string{"A.java": old}
}

// checkRun runs one CheckRequest (the serve path, where check outcomes are
// cached) against a store over dir and returns the violation IDs plus the
// run's check-artifact hit/miss counters.
func checkRun(t *testing.T, dir string, ruleSet []*rules.Rule) (ids string, hits, misses int) {
	t.Helper()
	reg := obs.NewRegistry()
	st := artifact.New(artifact.Config{Dir: dir, Metrics: reg})
	checker := NewChecker(ruleSet, Options{Workers: 1, Metrics: reg, Artifacts: st})
	out, err := checker.CheckRequest(context.Background(), checkerSources(), rules.Context{}, false)
	if err != nil {
		t.Fatalf("CheckRequest: %v", err)
	}
	var sb strings.Builder
	for _, v := range out.Violations {
		fmt.Fprintf(&sb, "%s ", v.Rule.ID)
	}
	s := obs.TakeSnapshot(reg, false)
	return sb.String(), int(s.Counters["artifact.check.hits"]), int(s.Counters["artifact.check.misses"])
}

// TestArtifactInvalidationRuleMutation pins rule-set-keyed invalidation on
// the checker path: identical sources + identical rules hit; narrowing the
// rule set misses (and still returns the right violations); restoring the
// original rules hits the original artifact again.
func TestArtifactInvalidationRuleMutation(t *testing.T) {
	dir := t.TempDir()

	cold, hits, misses := checkRun(t, dir, nil)
	if !strings.Contains(cold, "R5") {
		t.Fatalf("expected an R5 violation, got %q", cold)
	}
	if hits != 0 || misses != 1 {
		t.Fatalf("cold check hits/misses = %d/%d, want 0/1", hits, misses)
	}
	warm, hits, misses := checkRun(t, dir, nil)
	if warm != cold {
		t.Errorf("warm check output %q differs from cold %q", warm, cold)
	}
	if hits != 1 || misses != 0 {
		t.Errorf("warm check hits/misses = %d/%d, want 1/0", hits, misses)
	}

	// A different rule set is a different key: miss, and the narrowed run
	// must not see R5 (which is no longer in the set).
	narrowed, hits, misses := checkRun(t, dir, []*rules.Rule{rules.ByID("R3")})
	if strings.Contains(narrowed, "R5") {
		t.Errorf("narrowed rule set still reports R5: %q", narrowed)
	}
	if misses != 1 || hits != 0 {
		t.Errorf("narrowed check hits/misses = %d/%d, want 0/1", hits, misses)
	}
	again, hits, misses := checkRun(t, dir, nil)
	if again != cold || hits != 1 || misses != 0 {
		t.Errorf("restored rules: output %q hits/misses %d/%d, want %q 1/0", again, hits, misses, cold)
	}
}
