package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestFigure9Golden pins the exact rendering of the rule table (Figure 9 is
// fully static, so any drift is a deliberate rule change or a formatting
// regression). Refresh with: go test ./internal/core -run Golden -update-golden
func TestFigure9Golden(t *testing.T) {
	got := Figure9().String()
	path := filepath.Join("testdata", "figure9.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("Figure 9 rendering drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
