package core

import (
	"context"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/mining"
	"repro/internal/trace"
)

// Sharded corpus map-reduce: the mined change list is split into contiguous
// shards, each shard is analyzed and class-filtered independently (the map
// side — shards can run in separate processes against a shared -cache-dir),
// and the per-shard class results merge into exactly the monolithic result
// (the reduce side). Equivalence rests on two properties of the pipeline:
//
//   - mining.Collect runs globally before sharding, so fork deduplication
//     (which needs the whole corpus) is unaffected;
//   - change.Filter's first three filters are per-element and its fdup is a
//     first-occurrence dedup, so deduping each contiguous shard and then
//     deduping the shard-order concatenation yields the same survivors in
//     the same order as one global pass.
//
// Clustering is global and runs over the merged survivors.

// ShardChanges splits a mined change list into n contiguous shards (some
// possibly empty when n exceeds the list length). Contiguity is what makes
// per-shard filtering composable — see the package comment above.
func ShardChanges(ccs []mining.CodeChange, n int) [][]mining.CodeChange {
	if n < 1 {
		n = 1
	}
	out := make([][]mining.CodeChange, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(ccs)/n, (i+1)*len(ccs)/n
		out[i] = ccs[lo:hi]
	}
	return out
}

// MineCorpusShards mines the corpus once, then analyzes it in n contiguous
// shards, returning one analyzed slice per shard (failed changes dropped,
// as MineCorpus does). Flattening the shards reproduces MineCorpus exactly.
func (d *DiffCode) MineCorpusShards(c *corpus.Corpus, n int) [][]*AnalyzedChange {
	return d.MineCorpusShardsCtx(context.Background(), c, n)
}

// MineCorpusShardsCtx is MineCorpusShards with trace propagation: the
// collection runs under one "mine" span; each shard's batch analysis gets
// its own "analyze" span via AnalyzeAllCtx.
func (d *DiffCode) MineCorpusShardsCtx(ctx context.Context, c *corpus.Corpus, n int) [][]*AnalyzedChange {
	sp := d.opts.Metrics.StartSpan("mine")
	_, msp := trace.Start(ctx, "mine")
	ccs := mining.Collect(c, mining.Options{MinCommits: d.opts.MinCommits, Metrics: d.opts.Metrics})
	msp.SetAttr("changes", fmt.Sprint(len(ccs)))
	msp.End()
	sp.End()
	shards := ShardChanges(ccs, n)
	out := make([][]*AnalyzedChange, len(shards))
	for i, sh := range shards {
		analyzed := d.AnalyzeAllCtx(ctx, sh)
		keep := make([]*AnalyzedChange, 0, len(analyzed))
		for _, a := range analyzed {
			if a != nil {
				keep = append(keep, a)
			}
		}
		out[i] = keep
	}
	return out
}

// MergeClassResults reduces per-shard class results (in shard order) into
// the monolithic ClassPipelineResult for that class: per-element filter
// counts sum, and survivors concatenate under a first-occurrence dedup by
// usage-change key — the same discipline change.Filter's fdup applies, so
// the merged survivor list is element- and order-identical to filtering
// the unsharded extraction.
func MergeClassResults(class string, parts ...ClassPipelineResult) ClassPipelineResult {
	merged := ClassPipelineResult{Class: class}
	seen := map[string]bool{}
	for _, p := range parts {
		merged.Stats.Total += p.Stats.Total
		merged.Stats.AfterSame += p.Stats.AfterSame
		merged.Stats.AfterAdd += p.Stats.AfterAdd
		merged.Stats.AfterRem += p.Stats.AfterRem
		for _, uc := range p.Survivors {
			uc := uc
			k := uc.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			merged.Survivors = append(merged.Survivors, uc)
		}
	}
	merged.Stats.AfterDup = len(merged.Survivors)
	return merged
}
