package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/change"
	"repro/internal/corpus"
	"repro/internal/mining"
	"repro/internal/resilience"
)

// tinyChange builds a well-behaved mined change (a few dozen interpreter
// steps) that uses a target class, with unique provenance.
func tinyChange(idx int) mining.CodeChange {
	old := fmt.Sprintf(`class C%d {
  void m() { javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("DES"); }
}`, idx)
	nw := strings.Replace(old, `"DES"`, `"AES"`, 1)
	return mining.CodeChange{
		Meta: change.Meta{
			Project: "chaosproj",
			Commit:  fmt.Sprintf("c%02d", idx),
			File:    fmt.Sprintf("C%d.java", idx),
			Message: "tiny change",
		},
		Old: old,
		New: nw,
	}
}

// forkBomb renders a legal Java class whose abstract execution takes far
// more steps than any tinyChange: n sequential state-forking ifs evaluated
// over the capped state set.
func forkBomb(n int) string {
	var sb strings.Builder
	sb.WriteString("class Bomb {\n  void go(int x) {\n    int acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "    if (x > %d) { acc = acc + %d * 2 + x; } else { acc = acc - %d; }\n", i, i, i)
	}
	sb.WriteString("  }\n}\n")
	return sb.String()
}

// TestAnalyzeAllChaos is the chaos path of the issue: inject a panic into
// change i and a budget stall into change j of a 20-change batch, and
// assert the batch completes with 18 results in input order (nil slots for
// the failures) and a ledger holding exactly the two injected failures.
func TestAnalyzeAllChaos(t *testing.T) {
	cases := []struct{ panicAt, stallAt int }{
		{panicAt: 3, stallAt: 11},
		{panicAt: 0, stallAt: 19},
		{panicAt: 8, stallAt: 7},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("panic%d_stall%d", tc.panicAt, tc.stallAt), func(t *testing.T) {
			defer resilience.ClearFaultInjector()
			ccs := make([]mining.CodeChange, 20)
			for i := range ccs {
				ccs[i] = tinyChange(i)
			}
			// The stall is real: a fork-heavy new version that exhausts the
			// per-change step budget inside the interpreter's hot loop.
			ccs[tc.stallAt].New = forkBomb(400)
			panicTask := taskName(ccs[tc.panicAt])
			resilience.SetFaultInjector(func(task string) error {
				if task == panicTask {
					panic("injected chaos panic")
				}
				return nil
			})

			d := New(Options{BudgetSteps: 5000, Workers: 4})
			out := d.AnalyzeAll(ccs)

			if len(out) != len(ccs) {
				t.Fatalf("AnalyzeAll returned %d slots, want %d", len(out), len(ccs))
			}
			analyzed := 0
			for i, a := range out {
				if i == tc.panicAt || i == tc.stallAt {
					if a != nil {
						t.Errorf("slot %d: got a result, want nil (injected failure)", i)
					}
					continue
				}
				if a == nil {
					t.Errorf("slot %d: nil, want analyzed change", i)
					continue
				}
				analyzed++
				if a.Meta.Commit != ccs[i].Meta.Commit {
					t.Errorf("slot %d holds commit %s, want %s (order not preserved)",
						i, a.Meta.Commit, ccs[i].Meta.Commit)
				}
			}
			if analyzed != 18 {
				t.Errorf("analyzed %d changes, want 18", analyzed)
			}

			entries := d.Ledger().Entries()
			if len(entries) != 2 {
				t.Fatalf("ledger has %d entries, want 2:\n%s", len(entries), d.Ledger().Report())
			}
			byTask := map[string]resilience.Entry{}
			for _, e := range entries {
				byTask[e.Task] = e
			}
			pe, ok := byTask[panicTask]
			if !ok {
				t.Fatalf("no ledger entry for injected panic task %q", panicTask)
			}
			if pe.Phase != resilience.PhaseAnalyze || pe.Category != resilience.CatPanic {
				t.Errorf("panic entry = phase %q category %q, want analyze/panic", pe.Phase, pe.Category)
			}
			if pe.Stack == "" {
				t.Error("panic entry has no stack snippet")
			}
			se, ok := byTask[taskName(ccs[tc.stallAt])]
			if !ok {
				t.Fatalf("no ledger entry for stalled task %q", taskName(ccs[tc.stallAt]))
			}
			if se.Phase != resilience.PhaseAnalyze || se.Category != resilience.CatBudget {
				t.Errorf("stall entry = phase %q category %q, want analyze/budget", se.Phase, se.Category)
			}
			if se.Meta["commit"] != ccs[tc.stallAt].Meta.Commit {
				t.Errorf("stall entry meta commit = %q, want %q", se.Meta["commit"], ccs[tc.stallAt].Meta.Commit)
			}
		})
	}
}

// TestMineCorpusChaos injects panics into k of the n mined changes of a
// generated corpus and asserts the full mining front-end completes with
// n−k analyzed changes and exactly k ledger entries.
func TestMineCorpusChaos(t *testing.T) {
	defer resilience.ClearFaultInjector()
	c := corpus.Generate(corpus.Config{Seed: 7, Scale: 0.2, Projects: 10, ExtraProjects: 2})
	ccs := mining.Collect(c, mining.Options{})
	n := len(ccs)
	if n < 8 {
		t.Fatalf("generated corpus mined only %d changes; too small for chaos", n)
	}
	const k = 3
	faulty := map[string]bool{}
	for i := 0; i < k; i++ {
		faulty[taskName(ccs[i*2])] = true
	}
	if len(faulty) != k {
		t.Fatalf("task names not unique across the %d selected changes", k)
	}
	resilience.SetFaultInjector(func(task string) error {
		if faulty[task] {
			panic("injected mining panic")
		}
		return nil
	})

	d := New(Options{})
	analyzed := d.MineCorpus(c)
	if len(analyzed) != n-k {
		t.Errorf("MineCorpus returned %d changes, want %d (n=%d − k=%d)", len(analyzed), n-k, n, k)
	}
	for _, a := range analyzed {
		if a == nil {
			t.Error("MineCorpus returned a nil slot; skipped changes must be compacted away")
		}
	}
	entries := d.Ledger().Entries()
	if len(entries) != k {
		t.Fatalf("ledger has %d entries, want %d:\n%s", len(entries), k, d.Ledger().Report())
	}
	for _, e := range entries {
		if !faulty[e.Task] {
			t.Errorf("unexpected ledger task %q", e.Task)
		}
		if e.Phase != resilience.PhaseAnalyze || e.Category != resilience.CatPanic {
			t.Errorf("entry %q = phase %q category %q, want analyze/panic", e.Task, e.Phase, e.Category)
		}
	}
}

// TestAnalyzeAllFailFast: with FailFast set and a single worker, the first
// failure stops the batch after exactly one ledger entry.
func TestAnalyzeAllFailFast(t *testing.T) {
	defer resilience.ClearFaultInjector()
	resilience.SetFaultInjector(func(task string) error {
		if strings.HasPrefix(task, "change ") && !strings.HasSuffix(task, "[parse]") {
			panic("boom")
		}
		return nil
	})
	ccs := make([]mining.CodeChange, 10)
	for i := range ccs {
		ccs[i] = tinyChange(i)
	}
	d := New(Options{FailFast: true, Workers: 1})
	out := d.AnalyzeAll(ccs)
	for i, a := range out {
		if a != nil {
			t.Errorf("slot %d non-nil; every change should have failed or been skipped", i)
		}
	}
	if got := d.Ledger().Len(); got != 1 {
		t.Errorf("fail-fast recorded %d failures, want 1", got)
	}
}

// TestAnalyzeAllMaxErrors: the batch aborts once MaxErrors failures are on
// the ledger.
func TestAnalyzeAllMaxErrors(t *testing.T) {
	defer resilience.ClearFaultInjector()
	resilience.SetFaultInjector(func(task string) error {
		if strings.HasPrefix(task, "change ") && !strings.HasSuffix(task, "[parse]") {
			return fmt.Errorf("%w: injected stall", resilience.ErrBudgetExhausted)
		}
		return nil
	})
	ccs := make([]mining.CodeChange, 10)
	for i := range ccs {
		ccs[i] = tinyChange(i)
	}
	d := New(Options{MaxErrors: 3, Workers: 1})
	d.AnalyzeAll(ccs)
	if got := d.Ledger().Len(); got != 3 {
		t.Errorf("max-errors recorded %d failures, want 3", got)
	}
	for _, e := range d.Ledger().Entries() {
		if e.Category != resilience.CatBudget {
			t.Errorf("entry %q category %q, want budget", e.Task, e.Category)
		}
	}
}

// TestRunClassExtractGuard: a panic while extracting one change's usage
// changes skips that change with a PhaseExtract entry instead of aborting
// the class pipeline.
func TestRunClassExtractGuard(t *testing.T) {
	ccs := make([]mining.CodeChange, 5)
	for i := range ccs {
		ccs[i] = tinyChange(i)
	}
	d := New(Options{})
	analyzed := d.AnalyzeAll(ccs)
	if n := d.Ledger().Len(); n != 0 {
		t.Fatalf("setup: ledger has %d entries, want 0", n)
	}

	defer resilience.ClearFaultInjector()
	victim := fmt.Sprintf("extract Cipher %s@%s:%s",
		ccs[2].Meta.Project, ccs[2].Meta.Commit, ccs[2].Meta.File)
	resilience.SetFaultInjector(func(task string) error {
		if task == victim {
			panic("extract chaos")
		}
		return nil
	})
	r := d.RunClass(analyzed, "Cipher")
	if r.Stats.Total == 0 {
		t.Error("RunClass extracted nothing; other changes should still contribute")
	}
	entries := d.Ledger().Entries()
	if len(entries) != 1 {
		t.Fatalf("ledger has %d entries, want 1:\n%s", len(entries), d.Ledger().Report())
	}
	if entries[0].Phase != resilience.PhaseExtract || entries[0].Category != resilience.CatPanic {
		t.Errorf("entry = phase %q category %q, want extract/panic", entries[0].Phase, entries[0].Category)
	}
}

// TestAnalyzeAllHappyPath: with no faults the resilience layer is a no-op —
// every change analyzed, empty ledger, AnalyzeChange errors nil.
func TestAnalyzeAllHappyPath(t *testing.T) {
	ccs := make([]mining.CodeChange, 20)
	for i := range ccs {
		ccs[i] = tinyChange(i)
	}
	d := New(Options{BudgetSteps: 1 << 20})
	out := d.AnalyzeAll(ccs)
	for i, a := range out {
		if a == nil {
			t.Errorf("slot %d nil on the happy path", i)
		}
	}
	if got := d.Ledger().Len(); got != 0 {
		t.Errorf("happy path recorded %d failures, want 0:\n%s", got, d.Ledger().Report())
	}
	a, err := d.AnalyzeChange(ccs[0])
	if err != nil || a == nil {
		t.Errorf("AnalyzeChange = (%v, %v), want result and nil error", a, err)
	}
}

// TestAnalyzeChangeBudgetError: AnalyzeChange surfaces budget exhaustion as
// an error wrapping resilience.ErrBudgetExhausted.
func TestAnalyzeChangeBudgetError(t *testing.T) {
	cc := tinyChange(0)
	cc.New = forkBomb(400)
	d := New(Options{BudgetSteps: 5000})
	a, err := d.AnalyzeChange(cc)
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if a != nil {
		t.Error("got a partial AnalyzedChange, want nil")
	}
}
