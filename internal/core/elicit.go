package core

import (
	"sort"

	"repro/internal/change"
	"repro/internal/cluster"
	"repro/internal/cryptoapi"
	"repro/internal/distcache"
	"repro/internal/rules"
	"repro/internal/usage"
)

// ElicitedRule is the output of the automated elicitation step: a cluster
// of similar semantic usage changes, the direction the majority of commits
// move in (fix vs bug), and the rule suggested from the cluster's
// representative change.
type ElicitedRule struct {
	Class     string
	Members   []change.UsageChange
	Support   int // total commits behind the cluster (before fdup)
	Reversals int // commits applying the reverse (buggy) direction
	Direction rules.ChangeType
	Rule      *rules.Rule
}

// ElicitRules mechanizes the paper's final, manual step (§2 Step 3 and
// §6.3): cluster the surviving usage changes per class (with an automatic
// silhouette-based cut), discard clusters whose reverse direction has more
// commit support (these *introduce* problems — the paper notes they "are
// easy to filter out, even automatically, because there are fewer commits
// in clusters that introduce problems than in clusters that fix them"),
// and emit an auto-suggested rule per surviving cluster.
func (e *Evaluation) ElicitRules() []ElicitedRule {
	var out []ElicitedRule
	for _, class := range cryptoapi.TargetClasses {
		out = append(out, e.elicitClass(class)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Class < out[j].Class
	})
	return out
}

func (e *Evaluation) elicitClass(class string) []ElicitedRule {
	survivors := e.classResult(class).Survivors
	if len(survivors) == 0 {
		return nil
	}
	// Commit support per change signature, counted before deduplication
	// (fdup hides how often a fix recurs, but recurrence is the direction
	// signal).
	support := e.changeMultiplicity(class)

	var clusters [][]int
	if len(survivors) == 1 {
		clusters = [][]int{{0}}
	} else {
		d := cluster.DistMatrixEngine(survivors, nil, nil, e.DiffCode.engine)
		root := cluster.AgglomerateMatrix(d, cluster.Complete)
		clusters, _ = cluster.CutAuto(root, d)
	}

	var pending []ElicitedRule
	for _, cl := range clusters {
		er := ElicitedRule{Class: class, Direction: rules.SecurityFix}
		// Member-level direction vote: a change whose reverse has more
		// commit support is the buggy direction of its family and is
		// dropped; a cluster left without majority-fix members is a
		// false-positive cluster and is discarded entirely.
		repSupport := -1
		var rep change.UsageChange
		for _, i := range cl {
			c := survivors[i]
			fixN, revN := support[c.Key()], support[swapKey(c)]
			// Keep only strict-majority fix directions; a tie carries no
			// signal and emitting both directions would be contradictory.
			if revN >= fixN && revN > 0 {
				er.Reversals += fixN // this member is itself a reversal
				continue
			}
			er.Members = append(er.Members, c)
			er.Support += fixN
			er.Reversals += revN
			if fixN > repSupport {
				repSupport = fixN
				rep = c
			}
		}
		if len(er.Members) == 0 {
			continue // automatic false-positive removal
		}
		er.Rule = rules.Suggest(rep)
		pending = append(pending, er)
	}
	return dropReversedClusters(pending, e.DiffCode.engine)
}

// dropReversedClusters implements the paper's cluster-level direction
// comparison with a fuzzy reverse test: if reversing a cluster's changes
// lands close (in usage distance) to another cluster with strictly more
// commit support, the smaller cluster is the buggy direction and is
// dropped. This catches families the exact-signature vote misses, e.g. a
// CBC→ECB regression whose fix counterpart uses a different padding.
func dropReversedClusters(clusters []ElicitedRule, eng *distcache.Engine) []ElicitedRule {
	const reverseThreshold = 0.35
	var out []ElicitedRule
	for i, a := range clusters {
		reversed := false
		for j, b := range clusters {
			if i == j || b.Support <= a.Support {
				continue
			}
			if minSwapDist(eng, a, b) < reverseThreshold {
				reversed = true
				a.Reversals += b.Support
				break
			}
		}
		if !reversed {
			out = append(out, a)
		}
	}
	return out
}

// minSwapDist is the smallest usage distance between any member of a with
// its (F−, F+) swapped and any member of b. A nil engine computes uncached.
func minSwapDist(eng *distcache.Engine, a, b ElicitedRule) float64 {
	best := 2.0
	for _, ma := range a.Members {
		for _, mb := range b.Members {
			d := eng.UsageDist(ma.Added, ma.Removed, mb.Removed, mb.Added)
			if d < best {
				best = d
			}
		}
	}
	return best
}

// changeMultiplicity counts, per usage-change signature, how many distinct
// commits produced it (the pre-fdup view; a commit touching several objects
// of the class identically still counts once).
func (e *Evaluation) changeMultiplicity(class string) map[string]int {
	counts := map[string]int{}
	for _, a := range e.Analyzed {
		if !a.UsesClass(class) {
			continue
		}
		perCommit := map[string]bool{}
		for _, c := range e.DiffCode.ExtractClass(a, class) {
			if c.IsSame() || c.IsAddOnly() || c.IsRemoveOnly() {
				continue
			}
			perCommit[c.Key()] = true
		}
		for k := range perCommit {
			counts[k]++
		}
	}
	return counts
}

// swapKey is the signature of the reverse change (F− and F+ exchanged).
func swapKey(c change.UsageChange) string {
	rev := change.UsageChange{
		Class:   c.Class,
		Removed: append([]usage.Path{}, c.Added...),
		Added:   append([]usage.Path{}, c.Removed...),
	}
	return rev.Key()
}
