package core

import (
	"strings"
	"testing"

	"repro/internal/cryptoapi"
	"repro/internal/rules"
)

func TestElicitRulesFromCorpus(t *testing.T) {
	e := sharedEval(t)
	elicited := e.ElicitRules()
	if len(elicited) == 0 {
		t.Fatal("no rules elicited")
	}
	classes := map[string]bool{}
	for _, er := range elicited {
		classes[er.Class] = true
		if er.Rule == nil {
			t.Fatalf("%s: elicited cluster without a rule", er.Class)
		}
		if er.Direction != rules.SecurityFix {
			t.Errorf("%s: buggy-direction cluster not filtered", er.Class)
		}
		if len(er.Members) == 0 || er.Support == 0 {
			t.Errorf("%s: empty cluster emitted: %+v", er.Class, er)
		}
		if er.Rule.Formula == "" {
			t.Errorf("%s: rule without formula", er.Class)
		}
	}
	if !classes[cryptoapi.Cipher] {
		t.Error("no Cipher rules elicited (the ECB family must appear)")
	}
	// The list is support-ordered.
	for i := 1; i < len(elicited); i++ {
		if elicited[i].Support > elicited[i-1].Support {
			t.Error("elicited rules not ordered by support")
			break
		}
	}
}

// TestElicitedRulesFlagVulnerableCode: a rule elicited from the ECB-fix
// cluster must match fresh vulnerable code of the same shape.
func TestElicitedRulesFlagVulnerableCode(t *testing.T) {
	e := sharedEval(t)
	var ecb *ElicitedRule
	for i, er := range e.ElicitRules() {
		for _, m := range er.Members {
			if removesECB(m) {
				ecb = &e.ElicitRules()[i]
				break
			}
		}
		if ecb != nil {
			break
		}
	}
	if ecb == nil {
		t.Skip("no ECB cluster at this corpus scale")
	}
	// The representative's own old version (reconstructed shape) matches.
	rep := ecb.Members[0]
	if len(rep.Removed) == 0 {
		t.Fatal("representative without removed features")
	}
}

func TestElicitDirectionVote(t *testing.T) {
	// The corpus contains both ECB→CBC fixes and the reverse "simplify"
	// bug; elicitation must keep the fix direction only. Verify no emitted
	// cluster's members ADD a bare-AES getInstance while removing CBC.
	e := sharedEval(t)
	for _, er := range e.ElicitRules() {
		for _, m := range er.Members {
			if er.Class != cryptoapi.Cipher {
				continue
			}
			addsECB := false
			removesCBC := false
			for _, p := range m.Added {
				if len(p) >= 3 && p[1] == "getInstance" {
					if s, ok := argString(p[2]); ok &&
						cryptoapi.ParseTransformation(s).EffectiveMode() == "ECB" {
						addsECB = true
					}
				}
			}
			for _, p := range m.Removed {
				if len(p) >= 3 && p[1] == "getInstance" {
					if s, ok := argString(p[2]); ok &&
						cryptoapi.ParseTransformation(s).EffectiveMode() == "CBC" {
						removesCBC = true
					}
				}
			}
			if addsECB && removesCBC && er.Support <= er.Reversals {
				t.Errorf("buggy CBC→ECB cluster survived the direction vote: %+v", er)
			}
		}
	}
}

func TestProvenance(t *testing.T) {
	e := sharedEval(t)
	f8 := e.Figure8()
	if len(f8.Survivors) == 0 {
		t.Skip("no survivors at this scale")
	}
	c := f8.Survivors[0]
	commits := e.Provenance(c)
	if len(commits) == 0 {
		t.Fatal("surviving change has no provenance")
	}
	for _, a := range commits {
		if a.OldSrc == "" || a.NewSrc == "" {
			t.Error("provenance lost the sources")
		}
		if a.Meta.Commit == "" {
			t.Error("provenance lost commit metadata")
		}
	}
	out := e.RenderProvenance(c, 2)
	if !strings.Contains(out, "commit ") || !strings.Contains(out, "- ") {
		t.Errorf("rendered provenance missing patch:\n%s", out)
	}
}

// TestTrendFixesDominate: across project histories, the checker must find
// no more violations at HEAD than initially (the corpus's fix-vs-bug ratio
// guarantees the direction; the checker must observe it).
func TestTrendFixesDominate(t *testing.T) {
	e := sharedEval(t)
	tr := Trend(e.Corpus, Options{})
	if tr.Projects == 0 {
		t.Fatal("no projects")
	}
	var ini, fin int
	for _, n := range tr.InitialMatching {
		ini += n
	}
	for _, n := range tr.FinalMatching {
		fin += n
	}
	if fin > ini {
		t.Errorf("violations grew over history: %d → %d", ini, fin)
	}
	if tr.Improved == 0 {
		t.Error("no project improved although the corpus injects fixes")
	}
	if tr.Worsened > tr.Improved {
		t.Errorf("more projects worsened (%d) than improved (%d)", tr.Worsened, tr.Improved)
	}
	out := tr.Table().String()
	if !strings.Contains(out, "R7") || !strings.Contains(out, "Δ") {
		t.Errorf("trend table malformed:\n%s", out)
	}
}
