package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/androidctx"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/rules"
)

// sharedEval builds one mined evaluation for all shape tests (the analysis
// pass is the expensive part).
var (
	evalOnce sync.Once
	evalInst *Evaluation
)

func sharedEval(t *testing.T) *Evaluation {
	t.Helper()
	evalOnce.Do(func() {
		c := corpus.Generate(corpus.Config{Seed: 1, Scale: 0.5, Projects: 230, ExtraProjects: 29})
		evalInst = NewEvaluation(c, Options{})
	})
	return evalInst
}

// TestFigure6Shape checks the headline filtering claims: >99% of usage
// changes are filtered, per-class volume ordering holds, and every class
// retains a non-negative monotone filter cascade.
func TestFigure6Shape(t *testing.T) {
	e := sharedEval(t)
	totals := map[string]int{}
	var all, kept int
	for _, class := range cryptoapi.TargetClasses {
		s := e.classResult(class).Stats
		totals[class] = s.Total
		all += s.Total
		kept += s.AfterDup
		if s.Total < s.AfterSame || s.AfterSame < s.AfterAdd ||
			s.AfterAdd < s.AfterRem || s.AfterRem < s.AfterDup {
			t.Errorf("%s: filter cascade not monotone: %+v", class, s)
		}
	}
	if all == 0 {
		t.Fatal("no usage changes mined")
	}
	filtered := float64(all-kept) / float64(all)
	if filtered < 0.99 {
		t.Errorf("filtered fraction = %.4f, want > 0.99 (paper headline)", filtered)
	}
	// Per-class volume ordering (paper Figure 6): SecureRandom dominates,
	// PBEKeySpec is rarest, IvParameterSpec below Cipher.
	if totals[cryptoapi.SecureRandom] <= totals[cryptoapi.Cipher] {
		t.Errorf("SecureRandom (%d) should exceed Cipher (%d)",
			totals[cryptoapi.SecureRandom], totals[cryptoapi.Cipher])
	}
	for _, class := range cryptoapi.TargetClasses {
		if class != cryptoapi.PBEKeySpec && totals[cryptoapi.PBEKeySpec] >= totals[class] {
			t.Errorf("PBEKeySpec (%d) should be rarest, but >= %s (%d)",
				totals[cryptoapi.PBEKeySpec], class, totals[class])
		}
	}
	if totals[cryptoapi.IvParameterSpec] >= totals[cryptoapi.Cipher] {
		t.Error("IvParameterSpec should be below Cipher")
	}
}

// TestFilterKeepsInjectedFixes verifies the paper's filter-soundness claim:
// the filters do not lose security fixes. A fix may legitimately appear as
// an addition for a *secondary* class (e.g. switching to GCM introduces a
// SecureRandom for the fresh IV), but for at least one target class the fix
// must survive as a two-sided semantic usage change — except for fixes
// whose only effect is on a non-target class (adding a Mac for R13).
func TestFilterKeepsInjectedFixes(t *testing.T) {
	e := sharedEval(t)
	var fixCommits, survived, addOnly int
	for _, a := range e.Analyzed {
		if a.Kind != corpus.KindFix {
			continue
		}
		fixCommits++
		// Two fix families are purely additive under the abstraction and
		// are legitimately caught by fadd: adding a Mac (R13) and adding a
		// provider argument where none existed (R5 from the default
		// provider). The paper's fadd column accounts for exactly these.
		if strings.Contains(a.Meta.Message, "integrity check") ||
			strings.Contains(a.Meta.Message, "BouncyCastle") {
			addOnly++
			continue
		}
		ok := false
		for _, class := range cryptoapi.TargetClasses {
			if !a.UsesClass(class) {
				continue
			}
			for _, c := range e.DiffCode.ExtractClass(a, class) {
				if !c.IsSame() && !c.IsAddOnly() && !c.IsRemoveOnly() {
					ok = true
				}
			}
		}
		if !ok {
			t.Errorf("fix commit %s (%s) produced no surviving semantic change",
				a.Meta.Commit, a.Meta.Message)
		}
		if ok {
			survived++
		}
	}
	if fixCommits == 0 {
		t.Fatal("no fix commits in corpus")
	}
	if survived+addOnly != fixCommits {
		t.Errorf("fixes: %d total, %d survived, %d additive-only", fixCommits, survived, addOnly)
	}
	if survived < fixCommits/2 {
		t.Errorf("only %d of %d fixes survive the filters", survived, fixCommits)
	}
}

// TestRefactorsAllFiltered: refactoring and unrelated commits must always
// produce fsame-filterable usage changes (the abstraction's core promise).
func TestRefactorsAllFiltered(t *testing.T) {
	e := sharedEval(t)
	for _, a := range e.Analyzed {
		if a.Kind != corpus.KindRefactor && a.Kind != corpus.KindUnrelated {
			continue
		}
		for _, class := range cryptoapi.TargetClasses {
			if !a.UsesClass(class) {
				continue
			}
			for _, c := range e.DiffCode.ExtractClass(a, class) {
				if !c.IsSame() {
					t.Fatalf("refactor %s (%s) produced a semantic %s change:\n%s",
						a.Meta.Commit, a.Meta.Message, class, c.String())
				}
			}
		}
	}
}

// TestFigure7Shape: most rule-flipping semantic changes are fixes (>80%,
// the paper's second headline), and nothing semantic is lost before fdup.
func TestFigure7Shape(t *testing.T) {
	e := sharedEval(t)
	rows := e.Figure7Data()
	var fixes, bugs int
	for _, r := range rows {
		if r.Type == rules.SecurityFix {
			fixes += r.Total
			// A fix that flips a CL rule is by definition semantic; the
			// non-dup filters must not eat it.
			if r.ByFsame != 0 || r.ByFadd != 0 || r.ByFrem != 0 {
				t.Errorf("%s: fixes removed by non-dup filters: %+v", r.Rule, r)
			}
		}
		if r.Type == rules.BuggyChange {
			bugs += r.Total
		}
	}
	if fixes == 0 {
		t.Fatal("no security fixes classified")
	}
	if frac := float64(fixes) / float64(fixes+bugs); frac < 0.8 {
		t.Errorf("fix fraction = %.2f, want > 0.8 (paper: over 80%%)", frac)
	}
}

// TestFigure8ECBCluster: clustering the surviving Cipher changes must
// isolate an ECB-removal cluster (the paper's Figure 8 → rule R7).
func TestFigure8ECBCluster(t *testing.T) {
	e := sharedEval(t)
	f8 := e.Figure8()
	if len(f8.Survivors) == 0 {
		t.Fatal("no surviving Cipher changes to cluster")
	}
	if len(f8.ECBCluster) < 2 {
		t.Fatalf("ECB cluster not found among %d survivors:\n%s",
			len(f8.Survivors), f8.Rendering)
	}
	for _, i := range f8.ECBCluster {
		c := f8.Survivors[i]
		if !removesECB(c) {
			// Complete linkage may pull in a close relative; at least the
			// majority must remove ECB (checked in Figure8 itself), and
			// every member must touch getInstance.
			touches := false
			for _, p := range append(c.Removed, c.Added...) {
				if len(p) > 1 && p[1] == "getInstance" {
					touches = true
				}
			}
			if !touches {
				t.Errorf("cluster member %d unrelated to getInstance:\n%s", i, c.String())
			}
		}
	}
	if !strings.Contains(f8.Rendering, "└─") {
		t.Error("dendrogram rendering missing")
	}
}

// TestFigure10Shape checks the checker evaluation against the paper's
// relative rates: R3/R5 match nearly all applicable projects, R4/R12 match
// almost none, and >57% of projects violate at least one rule.
func TestFigure10Shape(t *testing.T) {
	e := sharedEval(t)
	f10 := e.Figure10()
	rate := map[string]float64{}
	appl := map[string]int{}
	for _, r := range f10.Rows {
		appl[r.Rule] = r.Applicable
		if r.Applicable > 0 {
			rate[r.Rule] = float64(r.Matching) / float64(r.Applicable)
		}
	}
	if rate["R3"] < 0.85 {
		t.Errorf("R3 match rate = %.2f, want near-total (paper: 94.8%%)", rate["R3"])
	}
	if rate["R5"] < 0.85 {
		t.Errorf("R5 match rate = %.2f, want near-total (paper: 97.6%%)", rate["R5"])
	}
	if rate["R4"] > 0.10 {
		t.Errorf("R4 match rate = %.2f, want rare (paper: 1%%)", rate["R4"])
	}
	if rate["R12"] > 0.10 {
		t.Errorf("R12 match rate = %.2f, want rare (paper: 0.3%%)", rate["R12"])
	}
	if rate["R7"] < 0.10 || rate["R7"] > 0.55 {
		t.Errorf("R7 match rate = %.2f, want around 28%%", rate["R7"])
	}
	if rate["R1"] < 0.15 || rate["R1"] > 0.60 {
		t.Errorf("R1 match rate = %.2f, want around 35%%", rate["R1"])
	}
	// Applicability ordering: SecureRandom rules apply most broadly,
	// composite R13 most narrowly.
	if appl["R3"] <= appl["R2"] || appl["R13"] >= appl["R2"] {
		t.Errorf("applicability ordering broken: R3=%d R2=%d R13=%d",
			appl["R3"], appl["R2"], appl["R13"])
	}
	viol := float64(f10.ViolatedAtLeastOne) / float64(f10.Projects)
	if viol < 0.57 {
		t.Errorf("violated fraction = %.2f, want > 0.57 (paper headline)", viol)
	}
}

// TestHeadline ties the three claims together.
func TestHeadline(t *testing.T) {
	e := sharedEval(t)
	h := e.ComputeHeadline(e.Figure10())
	if h.FilteredPct <= 99 {
		t.Errorf("FilteredPct = %.2f, want > 99", h.FilteredPct)
	}
	if h.FixPct <= 80 {
		t.Errorf("FixPct = %.2f, want > 80", h.FixPct)
	}
	if h.ViolatedPct <= 57 {
		t.Errorf("ViolatedPct = %.2f, want > 57", h.ViolatedPct)
	}
	if h.TotalChanges == 0 || h.TotalSurviving == 0 {
		t.Errorf("degenerate headline: %+v", h)
	}
}

// TestCheckerOnProjects exercises the CryptoChecker facade directly.
func TestCheckerOnProjects(t *testing.T) {
	e := sharedEval(t)
	checker := NewChecker(nil, Options{})
	found := 0
	for _, p := range e.Corpus.Projects[:30] {
		vs := checker.CheckProject(p)
		found += len(vs)
		for _, v := range vs {
			if v.Rule == nil || len(v.Objs) == 0 {
				t.Errorf("%s: malformed violation", p.Name)
			}
		}
	}
	if found == 0 {
		t.Error("checker found nothing across 30 projects")
	}
}

// TestFigure9Static sanity-checks the rule table rendering.
func TestFigure9Static(t *testing.T) {
	out := Figure9().String()
	for _, id := range []string{"R1", "R7", "R13"} {
		if !strings.Contains(out, id) {
			t.Errorf("Figure 9 missing %s:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "BouncyCastle") || !strings.Contains(out, "SHA-256") {
		t.Error("Figure 9 missing rule descriptions")
	}
}

// TestDeterministicEvaluation: the same corpus and options give the same
// Figure 6 table.
func TestDeterministicEvaluation(t *testing.T) {
	cfg := corpus.Config{Seed: 42, Scale: 0.05, Projects: 25, ExtraProjects: 0}
	t1 := NewEvaluation(corpus.Generate(cfg), Options{}).Figure6().String()
	t2 := NewEvaluation(corpus.Generate(cfg), Options{}).Figure6().String()
	if t1 != t2 {
		t.Errorf("evaluation not deterministic:\n%s\nvs\n%s", t1, t2)
	}
}

// TestManifestDetectionMatchesInfo: the corpus emits real Android manifests
// and PRNGFixes stubs; file-based context detection must reconstruct the
// generator's metadata exactly, so CheckCorpus (which uses the metadata)
// and cryptochecker's auto-detection (which uses the files) agree.
func TestManifestDetectionMatchesInfo(t *testing.T) {
	e := sharedEval(t)
	for _, p := range e.Corpus.Projects {
		detected := androidctx.Detect(p.Files)
		want := ContextOf(p)
		if detected != want {
			t.Errorf("%s: detected %+v, want %+v", p.Name, detected, want)
		}
	}
}
