// Package witness reconstructs ordered witness traces for CryptoChecker
// violations: starting from the provenance chains carried by the abstract
// values the rule matched on, it linearizes each chain origin-first
// (the literal or parameter the offending value started as), walks it
// through the assignments, calls and joins the value flowed along, and ends
// at the sink call the rule fired on. Traces render as indented text or
// JSON; both forms are deterministic for a given analysis result.
package witness

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/rules"
)

// MaxRenderSteps bounds the definition steps rendered per trace; longer
// chains keep their origin and sink and elide the middle with a marker.
const MaxRenderSteps = 32

// Step is one definition step of a witness trace.
type Step struct {
	// Kind is the provenance step kind ("literal", "assign", ...), "sink"
	// for the final rule-matched call, or "elided" for a truncation marker.
	Kind string `json:"kind"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	What string `json:"what"`
	// Truncated marks a step whose upstream history was cut by the
	// interpreter's provenance depth cap.
	Truncated bool `json:"truncated,omitempty"`
}

// Trace is one ordered witness: origin first, sink call last. A violation
// yields one trace per (witnessing object, matched event) pair.
type Trace struct {
	Rule        string `json:"rule"`
	Description string `json:"description"`
	Object      string `json:"object"`
	Explanation string `json:"explanation,omitempty"`
	// Steps runs origin → intermediate definitions → sink; the last step
	// always has Kind "sink".
	Steps []Step `json:"steps"`
}

// Sink returns the trace's final step.
func (t Trace) Sink() Step { return t.Steps[len(t.Steps)-1] }

// ForViolation reconstructs the witness traces of one violation. Every
// trace is non-empty and ends at the sink call; when the matched values
// carry no provenance (tracking disabled, or a value the interpreter could
// not follow) the trace degrades to the sink step alone.
func ForViolation(v rules.Violation, res *analysis.Result, ctx rules.Context) []Trace {
	evidence := v.Evidence(res, ctx)
	var out []Trace
	for _, obj := range v.Objs {
		for _, m := range evidence[obj] {
			evs := res.Uses[obj]
			if m.EventIndex < 0 || m.EventIndex >= len(evs) {
				continue
			}
			ev := evs[m.EventIndex]
			tr := Trace{
				Rule:        v.Rule.ID,
				Description: v.Rule.Description,
				Object:      obj.SiteLabel(),
				Explanation: rules.Explanation(v.Rule.ID),
				Steps:       flowSteps(ev, m.Args),
			}
			tr.Steps = append(tr.Steps, Step{
				Kind: "sink",
				File: ev.File,
				Line: ev.Pos.Line,
				Col:  ev.Pos.Col,
				What: rules.FormatEvent(ev),
			})
			out = append(out, tr)
		}
	}
	return out
}

// Collect reconstructs traces for a whole violation list, preserving its
// order.
func Collect(vs []rules.Violation, res *analysis.Result, ctx rules.Context) []Trace {
	var out []Trace
	for _, v := range vs {
		out = append(out, ForViolation(v, res, ctx)...)
	}
	return out
}

// flowSteps linearizes the provenance of the evidence arguments of one
// event, origin-first. Chains of several arguments share one visited set,
// so a value reaching two argument positions renders once.
func flowSteps(ev analysis.Event, argIdx []int) []Step {
	var chains []*absdom.Prov
	for _, i := range argIdx {
		if i >= 0 && i < len(ev.Args) && ev.Args[i].Prov != nil {
			chains = append(chains, ev.Args[i].Prov)
		}
	}
	if len(chains) == 0 {
		// No argument positions named (the event itself is the evidence):
		// fall back to any argument that carries history.
		for _, a := range ev.Args {
			if a.Prov != nil {
				chains = append(chains, a.Prov)
			}
		}
	}
	var steps []Step
	visited := map[*absdom.Prov]bool{}
	for _, c := range chains {
		steps = appendChain(steps, c, visited)
	}
	return capSteps(steps)
}

// appendChain emits the DAG under p in topological, origin-first order.
func appendChain(steps []Step, p *absdom.Prov, visited map[*absdom.Prov]bool) []Step {
	if p == nil || visited[p] {
		return steps
	}
	visited[p] = true
	steps = appendChain(steps, p.Prev0, visited)
	steps = appendChain(steps, p.Prev1, visited)
	return append(steps, Step{
		Kind:      p.Kind.String(),
		File:      p.File(),
		Line:      int(p.Line),
		Col:       int(p.Col),
		What:      p.What(),
		Truncated: p.Truncated,
	})
}

// capSteps enforces MaxRenderSteps, keeping the head and tail of the flow
// and marking the elision. Capped output is exactly MaxRenderSteps steps
// (elision marker included), so a full trace never exceeds MaxRenderSteps+1
// once the sink step is appended.
func capSteps(steps []Step) []Step {
	if len(steps) <= MaxRenderSteps {
		return steps
	}
	head := (MaxRenderSteps - 1) / 2
	tail := MaxRenderSteps - 1 - head
	elided := len(steps) - head - tail
	out := make([]Step, 0, MaxRenderSteps)
	out = append(out, steps[:head]...)
	out = append(out, Step{Kind: "elided", What: fmt.Sprintf("%d steps elided", elided)})
	out = append(out, steps[len(steps)-tail:]...)
	return out
}

// Render formats traces as indented text, one block per trace.
func Render(traces []Trace) string {
	var sb strings.Builder
	for i, t := range traces {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%s: %s [%s]\n", t.Rule, t.Description, t.Object)
		for _, s := range t.Steps {
			fmt.Fprintf(&sb, "    %s", renderStep(s))
			sb.WriteByte('\n')
		}
		if t.Explanation != "" {
			fmt.Fprintf(&sb, "  why: %s\n", t.Explanation)
		}
	}
	return sb.String()
}

func renderStep(s Step) string {
	var sb strings.Builder
	switch s.Kind {
	case "sink":
		sb.WriteString("sink: ")
	case "elided":
		sb.WriteString("... ")
	default:
		sb.WriteString(s.Kind)
		sb.WriteString(": ")
	}
	sb.WriteString(s.What)
	if s.Truncated {
		sb.WriteString(" (history truncated)")
	}
	if s.Line > 0 {
		fmt.Fprintf(&sb, "  at %s:%d:%d", s.File, s.Line, s.Col)
	}
	return sb.String()
}

// JSON renders traces as an indented JSON array (stable field order, "[]"
// for no traces).
func JSON(traces []Trace) string {
	if len(traces) == 0 {
		return "[]\n"
	}
	b, err := json.MarshalIndent(traces, "", "  ")
	if err != nil {
		// Trace is a plain value type; marshaling cannot fail.
		return "[]\n"
	}
	return string(b) + "\n"
}

// Observe records trace statistics on the metrics registry: total traces,
// total definition steps, and how many traces carry a depth-cap truncation.
func Observe(reg *obs.Registry, traces []Trace) {
	if reg == nil {
		return
	}
	var steps, truncated int64
	for _, t := range traces {
		steps += int64(len(t.Steps))
		for _, s := range t.Steps {
			if s.Truncated || s.Kind == "elided" {
				truncated++
				break
			}
		}
	}
	reg.Counter("witness.traces").Add(int64(len(traces)))
	reg.Counter("witness.steps").Add(steps)
	reg.Counter("witness.truncated").Add(truncated)
}
