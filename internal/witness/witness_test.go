package witness

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/rules"
)

func analyzeWhy(t *testing.T, src string) *analysis.Result {
	t.Helper()
	return analysis.Analyze(
		analysis.ParseProgram(map[string]string{"T.java": src}),
		analysis.Options{Provenance: true})
}

func traceFor(t *testing.T, src string, r *rules.Rule) []Trace {
	t.Helper()
	res := analyzeWhy(t, src)
	vs := rules.Check(res, rules.Context{}, []*rules.Rule{r})
	if len(vs) != 1 {
		t.Fatalf("want 1 violation of %s, got %d", r.ID, len(vs))
	}
	traces := ForViolation(vs[0], res, rules.Context{})
	if len(traces) == 0 {
		t.Fatalf("no traces for %s", r.ID)
	}
	return traces
}

// TestTraceEndsAtSink pins the core witness contract: every trace is
// non-empty and its final step is the sink call.
func TestTraceEndsAtSink(t *testing.T) {
	traces := traceFor(t, `
		import javax.crypto.Cipher;
		class T {
			void run() throws Exception {
				Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding");
			}
		}`, rules.R7)
	for _, tr := range traces {
		if len(tr.Steps) == 0 {
			t.Fatal("empty trace")
		}
		sink := tr.Sink()
		if sink.Kind != "sink" {
			t.Errorf("last step kind = %q, want sink", sink.Kind)
		}
		if !strings.Contains(sink.What, "getInstance") {
			t.Errorf("sink = %q, want the getInstance call", sink.What)
		}
		if sink.Line == 0 || sink.File == "" {
			t.Errorf("sink has no position: %+v", sink)
		}
	}
}

// TestTraceFollowsFlow checks that a value flowing literal → variable →
// helper call → sink produces the full chain in order.
func TestTraceFollowsFlow(t *testing.T) {
	traces := traceFor(t, `
		import javax.crypto.spec.SecretKeySpec;
		class T {
			void run() throws Exception {
				String key = "s3cr3t";
				SecretKeySpec ks = new SecretKeySpec(key.getBytes(), "AES");
			}
		}`, rules.R10)
	tr := traces[0]
	kinds := make([]string, len(tr.Steps))
	for i, s := range tr.Steps {
		kinds[i] = s.Kind
	}
	got := strings.Join(kinds, ",")
	want := "literal,assign,call,sink"
	if got != want {
		t.Errorf("step kinds = %s, want %s", got, want)
	}
	if tr.Steps[0].Kind != "literal" || !strings.Contains(tr.Steps[0].What, "s3cr3t") {
		t.Errorf("origin = %+v, want the key literal", tr.Steps[0])
	}
	if tr.Explanation == "" {
		t.Error("trace carries no explanation")
	}
}

// TestTraceCrossMethodFlow checks provenance survives call inlining: the
// literal is defined in a helper and consumed in the caller.
func TestTraceCrossMethodFlow(t *testing.T) {
	traces := traceFor(t, `
		import javax.crypto.spec.IvParameterSpec;
		class T {
			byte[] iv() { return new byte[]{1, 2, 3, 4, 5, 6, 7, 8}; }
			void run() throws Exception {
				IvParameterSpec spec = new IvParameterSpec(iv());
			}
		}`, rules.R9)
	tr := traces[0]
	var sawOrigin, sawInline bool
	for _, s := range tr.Steps {
		if s.Kind == "literal" {
			sawOrigin = true
		}
		if s.Kind == "call" && strings.Contains(s.What, "inlined iv") {
			sawInline = true
		}
	}
	if !sawOrigin || !sawInline {
		t.Errorf("steps missed the helper flow (origin %t, inlined call %t): %+v",
			sawOrigin, sawInline, tr.Steps)
	}
}

// TestRenderAndJSON sanity-checks both output forms.
func TestRenderAndJSON(t *testing.T) {
	traces := traceFor(t, `
		import javax.crypto.Cipher;
		class T {
			void run() throws Exception {
				Cipher c = Cipher.getInstance("DES");
			}
		}`, rules.R8)
	text := Render(traces)
	if !strings.Contains(text, "R8:") || !strings.Contains(text, "sink:") {
		t.Errorf("render missing rule header or sink:\n%s", text)
	}
	if !strings.Contains(text, "why:") {
		t.Errorf("render missing explanation:\n%s", text)
	}
	var back []Trace
	if err := json.Unmarshal([]byte(JSON(traces)), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back) != len(traces) || back[0].Rule != "R8" {
		t.Errorf("JSON round-trip lost traces: %+v", back)
	}
	if got := JSON(nil); got != "[]\n" {
		t.Errorf("JSON(nil) = %q, want []", got)
	}
}

// TestCapSteps checks the render cap keeps head and tail around an elision
// marker.
func TestCapSteps(t *testing.T) {
	long := make([]Step, 100)
	for i := range long {
		long[i] = Step{Kind: "assign", What: "step"}
	}
	capped := capSteps(long)
	if len(capped) != MaxRenderSteps {
		t.Fatalf("len = %d, want %d", len(capped), MaxRenderSteps)
	}
	mid := capped[(MaxRenderSteps-1)/2]
	if mid.Kind != "elided" || !strings.Contains(mid.What, "elided") {
		t.Errorf("no elision marker at the cut: %+v", mid)
	}
}

// TestObserve checks the telemetry counters the e2e workflow asserts on.
func TestObserve(t *testing.T) {
	reg := obs.NewRegistry()
	traces := []Trace{
		{Rule: "R1", Steps: []Step{{Kind: "literal"}, {Kind: "sink"}}},
		{Rule: "R2", Steps: []Step{{Kind: "literal", Truncated: true}, {Kind: "sink"}}},
	}
	Observe(reg, traces)
	if got := reg.Counter("witness.traces").Value(); got != 2 {
		t.Errorf("witness.traces = %d, want 2", got)
	}
	if got := reg.Counter("witness.steps").Value(); got != 4 {
		t.Errorf("witness.steps = %d, want 4", got)
	}
	if got := reg.Counter("witness.truncated").Value(); got != 1 {
		t.Errorf("witness.truncated = %d, want 1", got)
	}
}

// TestProvenanceDepthCapBounds builds a chain far beyond MaxProvDepth and
// checks the interpreter-side cap keeps the origin reachable and depth
// bounded (the witness layer then renders the truncation marker).
func TestProvenanceDepthCapBounds(t *testing.T) {
	p := absdom.NewProv(absdom.ProvLiteral, "F.java", 1, 1, "origin", nil, nil)
	origin := p
	for i := 0; i < 10*absdom.MaxProvDepth; i++ {
		p = absdom.NewProv(absdom.ProvAssign, "F.java", i+2, 1, "hop", p, nil)
	}
	if p.Depth() > absdom.MaxProvDepth+2 {
		t.Errorf("depth = %d, want <= %d", p.Depth(), absdom.MaxProvDepth+2)
	}
	if p.Origin() != origin {
		t.Error("origin lost through truncation")
	}
	steps := appendChain(nil, p, map[*absdom.Prov]bool{})
	if steps[0].What != "origin" {
		t.Errorf("first rendered step = %+v, want the origin", steps[0])
	}
	var sawTrunc bool
	for _, s := range steps {
		if s.Truncated {
			sawTrunc = true
		}
	}
	if !sawTrunc {
		t.Error("no truncated step rendered for an over-deep chain")
	}
}
