package witness

import (
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/rules"
)

// explainSeeds covers the shapes the witness layer must digest without
// panicking: clean violations, provenance through helpers and fields,
// malformed and truncated sources, and adversarial flows (deep chains,
// self-referential helpers) that stress the depth and fan-in caps.
var explainSeeds = []string{
	`class A { void m() throws Exception { Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding"); } }`,
	`class B {
		static final byte[] IV = {1, 2, 3, 4};
		void m() { IvParameterSpec s = new IvParameterSpec(IV); }
	}`,
	`class C {
		byte[] key() { return "secret".getBytes(); }
		void m() { SecretKeySpec k = new SecretKeySpec(key(), "AES"); }
	}`,
	`class D {
		void m(char[] pw) {
			byte[] salt = {1};
			PBEKeySpec s = new PBEKeySpec(pw, salt, 5, 128);
		}
	}`,
	`class E { void m() { SecureRandom r = new SecureRandom(); r.setSeed(42); } }`,
	// Deep derivation chain: stresses the provenance depth cap.
	`class F {
		void m() throws Exception {
			String a = "D";
			String b = a + "E" + a + "E" + a + "E" + a + "E" + a + "E" + a + "E" + a + "E" + a;
			String c = b.substring(0, 1) + "ES";
			Cipher x = Cipher.getInstance(c);
		}
	}`,
	// Mutual recursion through helpers: stresses inlining guards.
	`class G {
		String p() { return q(); }
		String q() { return p(); }
		void m() throws Exception { Cipher c = Cipher.getInstance(p()); }
	}`,
	// Malformed / truncated inputs.
	`class H { void m( { Cipher.getInstance("DES`,
	`class`,
	``,
	"\x00\x01\x02 cipher",
	`class I { static final String X = "AES"; void m() throws Exception { Cipher.getInstance(X); } }`,
}

// FuzzExplain drives arbitrary Java snippets through parse → analyze (with
// provenance) → check → witness reconstruction → render/JSON, asserting the
// whole explain pipeline never panics and every produced trace keeps the
// sink-terminated contract.
func FuzzExplain(f *testing.F) {
	for _, s := range explainSeeds {
		f.Add(s)
	}
	ruleSet := append(rules.All(), rules.CryptoLint()...)
	ctx := rules.Context{Android: true, MinSDKVersion: 17}
	f.Fuzz(func(t *testing.T, src string) {
		prog := analysis.ParseProgram(map[string]string{"F.java": src})
		res := analysis.Analyze(prog, analysis.Options{Provenance: true})
		vs := rules.Check(res, ctx, ruleSet)
		traces := Collect(vs, res, ctx)
		for _, tr := range traces {
			if len(tr.Steps) == 0 {
				t.Fatalf("empty trace for rule %s", tr.Rule)
			}
			if tr.Sink().Kind != "sink" {
				t.Fatalf("trace for rule %s does not end at a sink: %+v", tr.Rule, tr.Steps)
			}
			if len(tr.Steps) > MaxRenderSteps+1 {
				t.Fatalf("trace for rule %s exceeds the render cap: %d steps", tr.Rule, len(tr.Steps))
			}
		}
		_ = Render(traces)
		var back []Trace
		if err := json.Unmarshal([]byte(JSON(traces)), &back); err != nil {
			t.Fatalf("JSON does not round-trip: %v", err)
		}
	})
}
