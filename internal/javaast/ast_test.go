package javaast

import (
	"testing"

	"repro/internal/javatok"
)

func TestTypeRefBaseAndString(t *testing.T) {
	cases := []struct {
		name       string
		dims       int
		base, repr string
	}{
		{"Cipher", 0, "Cipher", "Cipher"},
		{"javax.crypto.Cipher", 0, "Cipher", "javax.crypto.Cipher"},
		{"byte", 2, "byte", "byte[][]"},
		{"a.b.C", 1, "C", "a.b.C[]"},
	}
	for _, c := range cases {
		tr := &TypeRef{Name: c.name, Dims: c.dims}
		if tr.Base() != c.base {
			t.Errorf("%s: Base = %q, want %q", c.name, tr.Base(), c.base)
		}
		if tr.String() != c.repr {
			t.Errorf("%s: String = %q, want %q", c.name, tr.String(), c.repr)
		}
	}
}

func TestModifierHelpers(t *testing.T) {
	f := &FieldDecl{Modifiers: []string{"private", "static", "final"}}
	if !f.IsStatic() || !f.IsFinal() {
		t.Error("field modifiers not detected")
	}
	m := &MethodDecl{Modifiers: []string{"public"}}
	if m.IsStatic() {
		t.Error("non-static method reported static")
	}
	td := &TypeDecl{Modifiers: []string{"static"}}
	if !td.IsStatic() {
		t.Error("static nested type not detected")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	// Build a small tree by hand and count node visits.
	pos := javatok.Pos{Line: 1, Col: 1}
	body := &Block{P: pos, Stmts: []Stmt{
		&LocalVarDecl{Name: "x", Type: &TypeRef{Name: "int"},
			Init: &Binary{Op: "+", L: &Literal{Kind: IntLit, Value: "1"},
				R: &Literal{Kind: IntLit, Value: "2"}}, P: pos},
		&IfStmt{Cond: &Name{Ident: "x"},
			Then: &ExprStmt{X: &Call{Name: "go", Args: []Expr{&Name{Ident: "x"}}}, P: pos},
			Else: &ReturnStmt{X: &Literal{Kind: NullLit, Value: "null"}, P: pos}, P: pos},
	}}
	count := 0
	Walk(body, func(n Node) bool {
		count++
		return true
	})
	// Block, decl, binary, 2 literals, if, name, exprstmt, call, name,
	// return, null literal = 12.
	if count != 12 {
		t.Errorf("visited %d nodes, want 12", count)
	}
}

func TestWalkPrune(t *testing.T) {
	body := &Block{Stmts: []Stmt{
		&ExprStmt{X: &Call{Name: "outer", Args: []Expr{
			&Call{Name: "inner"},
		}}},
	}}
	var names []string
	Walk(body, func(n Node) bool {
		if c, ok := n.(*Call); ok {
			names = append(names, c.Name)
			return false // prune: don't descend into args
		}
		return true
	})
	if len(names) != 1 || names[0] != "outer" {
		t.Errorf("prune failed: %v", names)
	}
}

func TestWalkNilSafe(t *testing.T) {
	// Nodes with nil children must not panic.
	nodes := []Node{
		&IfStmt{Cond: &Name{Ident: "c"}},
		&ReturnStmt{},
		&TryStmt{Body: &Block{}},
		&ForStmt{},
		&Call{Name: "m"},
		&Lambda{},
	}
	for _, n := range nodes {
		Walk(n, func(Node) bool { return true })
	}
	Walk(nil, func(Node) bool { return true })
}

func TestExprStringCoverage(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Literal{Kind: StringLit, Value: "AES"}, `"AES"`},
		{&Literal{Kind: CharLit, Value: "c"}, "'c'"},
		{&Literal{Kind: LongLit, Value: "7"}, "7L"},
		{&Literal{Kind: FloatLit, Value: "1.5"}, "1.5f"},
		{&Cond{C: &Name{Ident: "a"}, T: &Name{Ident: "b"}, F: &Name{Ident: "c"}}, "(a ? b : c)"},
		{&InstanceOf{X: &Name{Ident: "x"}, Type: &TypeRef{Name: "T"}}, "x instanceof T"},
		{&This{}, "this"},
		{&Super{}, "super"},
		{&ClassLit{Type: &TypeRef{Name: "T"}}, "T.class"},
		{&MethodRef{Recv: &Name{Ident: "List"}, Name: "of"}, "List::of"},
		{&Index{X: &Name{Ident: "a"}, I: &Literal{Kind: IntLit, Value: "0"}}, "a[0]"},
		{&Unary{Op: "++", X: &Name{Ident: "i"}, Postfix: true}, "i++"},
		{&Assign{Op: "+=", L: &Name{Ident: "x"}, R: &Literal{Kind: IntLit, Value: "1"}}, "x += 1"},
		{&Cast{Type: &TypeRef{Name: "byte", Dims: 1}, X: &Name{Ident: "o"}}, "(byte[]) o"},
		{&ArrayInit{Elems: []Expr{&Literal{Kind: IntLit, Value: "1"}}}, "{1}"},
		{nil, "<nil>"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestSummary(t *testing.T) {
	cu := &CompilationUnit{
		Package: "a.b",
		Types: []*TypeDecl{
			{Name: "C", Kind: ClassKind,
				Fields:  []*FieldDecl{{Name: "f"}},
				Methods: []*MethodDecl{{Name: "m"}, {Name: "n"}}},
			{Name: "I", Kind: InterfaceKind},
		},
	}
	want := "pkg a.b; class C{f:1 m:2} interface I{f:0 m:0}"
	if got := Summary(cu); got != want {
		t.Errorf("Summary = %q, want %q", got, want)
	}
}
