package javaast_test

import (
	"testing"

	"repro/internal/javaast"
	"repro/internal/javaparser"
)

// walkSrc exercises every statement and expression node kind the AST
// defines, so Walk's traversal arms are all visited.
const walkSrc = `
package w;

import java.util.List;

public class Everything extends Base implements A, B {
    static final int LIMIT = 10;
    int[] data = {1, 2, 3};
    String label = "x" + 1;

    static { setupOnce(); }
    { counterInit(); }

    Everything() { this(0); }
    Everything(int seed) { super(); }

    <T> T generic(List<T> xs) { return xs.get(0); }

    int run(int n, boolean flag) throws Exception {
        int acc = n >= 0 ? n : -n;
        long big = (long) acc;
        Object o = flag ? null : new Everything(acc);
        boolean is = o instanceof Everything;
        int[] arr = new int[4];
        arr[0] = acc++;
        acc += arr[0];
        acc -= 1; acc *= 2; acc /= 3; acc %= 5;
        acc <<= 1; acc >>= 1; acc &= 7; acc |= 8; acc ^= 2;

        if (flag) { acc = ~acc; } else { acc = !flag ? 1 : 0; }
        while (acc > 100) acc--;
        do { acc++; } while (acc < 2);
        int len = this.data.length;
        for (int i = 0; i < n; i++) {
            if (i == 2) continue;
            acc += i;
        }
        for (int v : arr) acc += v;
        outer:
        for (;;) {
            switch (acc) {
            case 1: acc = 0; break;
            case 2:
            default: break outer;
            }
        }
        synchronized (this) { acc += LIMIT; }
        assert acc != 3 : "bad " + acc;
        try (AutoCloseable c = open()) {
            maybeThrow();
        } catch (IllegalStateException | IllegalArgumentException e) {
            throw new RuntimeException(e);
        } finally {
            cleanup();
        }
        Runnable r = () -> helper(acc);
        Runnable r2 = Everything::setupOnce;
        Class<?> k = Everything.class;
        ;
        return acc;
    }

    static void setupOnce() {}
    void counterInit() {}
    void helper(int x) {}
    AutoCloseable open() { return null; }
    void maybeThrow() {}
    void cleanup() {}
}

interface A { void a(); }
interface B {}
class Base {}
enum Tier { ONE, TWO }
`

func TestWalkCoversAllNodeKinds(t *testing.T) {
	res := javaparser.Parse(walkSrc)
	if len(res.Errors) != 0 {
		t.Fatalf("parse errors: %v", res.Errors)
	}
	kinds := map[string]int{}
	javaast.Walk(res.Unit, func(n javaast.Node) bool {
		switch n.(type) {
		case *javaast.CompilationUnit:
			kinds["unit"]++
		case *javaast.Import:
			kinds["import"]++
		case *javaast.TypeDecl:
			kinds["type"]++
		case *javaast.FieldDecl:
			kinds["field"]++
		case *javaast.MethodDecl:
			kinds["method"]++
		case *javaast.Param:
			kinds["param"]++
		case *javaast.Block:
			kinds["block"]++
		case *javaast.LocalVarDecl:
			kinds["local"]++
		case *javaast.ExprStmt:
			kinds["exprstmt"]++
		case *javaast.IfStmt:
			kinds["if"]++
		case *javaast.WhileStmt:
			kinds["while"]++
		case *javaast.DoStmt:
			kinds["do"]++
		case *javaast.ForStmt:
			kinds["for"]++
		case *javaast.ForEachStmt:
			kinds["foreach"]++
		case *javaast.ReturnStmt:
			kinds["return"]++
		case *javaast.ThrowStmt:
			kinds["throw"]++
		case *javaast.TryStmt:
			kinds["try"]++
		case *javaast.CatchClause:
			kinds["catch"]++
		case *javaast.SwitchStmt:
			kinds["switch"]++
		case *javaast.SwitchCase:
			kinds["case"]++
		case *javaast.BreakStmt:
			kinds["break"]++
		case *javaast.ContinueStmt:
			kinds["continue"]++
		case *javaast.SyncStmt:
			kinds["sync"]++
		case *javaast.LabeledStmt:
			kinds["label"]++
		case *javaast.AssertStmt:
			kinds["assert"]++
		case *javaast.EmptyStmt:
			kinds["empty"]++
		case *javaast.Literal:
			kinds["literal"]++
		case *javaast.Name:
			kinds["name"]++
		case *javaast.FieldAccess:
			kinds["fieldaccess"]++
		case *javaast.Call:
			kinds["call"]++
		case *javaast.New:
			kinds["new"]++
		case *javaast.NewArray:
			kinds["newarray"]++
		case *javaast.ArrayInit:
			kinds["arrayinit"]++
		case *javaast.Index:
			kinds["index"]++
		case *javaast.Binary:
			kinds["binary"]++
		case *javaast.Unary:
			kinds["unary"]++
		case *javaast.Assign:
			kinds["assign"]++
		case *javaast.Cond:
			kinds["cond"]++
		case *javaast.Cast:
			kinds["cast"]++
		case *javaast.InstanceOf:
			kinds["instanceof"]++
		case *javaast.This:
			kinds["this"]++
		case *javaast.Super:
			kinds["super"]++
		case *javaast.ClassLit:
			kinds["classlit"]++
		case *javaast.Lambda:
			kinds["lambda"]++
		case *javaast.MethodRef:
			kinds["methodref"]++
		}
		return true
	})
	want := []string{"unit", "import", "type", "field", "method", "param",
		"block", "local", "exprstmt", "if", "while", "do", "for", "foreach",
		"return", "throw", "try", "catch", "switch", "case", "break",
		"continue", "sync", "label", "assert", "empty", "literal", "name",
		"fieldaccess", "call", "new", "newarray", "arrayinit", "index",
		"binary", "unary", "assign", "cond", "cast", "instanceof", "this",
		"super", "classlit", "lambda", "methodref"}
	for _, k := range want {
		if kinds[k] == 0 {
			t.Errorf("node kind %q never visited (source does not produce it, or Walk skips it)", k)
		}
	}
}

// TestExprStringOnParsedTree renders every expression in the walked tree —
// ExprString must never produce an empty or panicking result.
func TestExprStringOnParsedTree(t *testing.T) {
	res := javaparser.Parse(walkSrc)
	javaast.Walk(res.Unit, func(n javaast.Node) bool {
		if e, ok := n.(javaast.Expr); ok {
			if s := javaast.ExprString(e); s == "" {
				t.Errorf("empty rendering for %T", e)
			}
		}
		return true
	})
}
