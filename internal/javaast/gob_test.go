package javaast_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/javaast"
	"repro/internal/javaparser"
)

// gobSource exercises every node kind the encoder must round-trip: all
// statement forms, all expression forms, nested and enum types, lambdas and
// method references with interface-typed bodies.
const gobSource = `
package io.acme.rt;

import java.security.MessageDigest;
import javax.crypto.*;
import static java.nio.charset.StandardCharsets.UTF_8;

public final class RoundTrip implements AutoCloseable {
    enum Mode { ECB, CBC, GCM }

    static class Inner { int depth; }

    private static final String ALGO = "AES/GCM/NoPadding";
    private int[] counts = new int[16];
    private byte[] seed = new byte[]{1, 2, 3};
    private Object handler = (x) -> x;
    private Runnable ref = RoundTrip::close;

    RoundTrip(int n) throws IllegalStateException {
        this.counts[0] = n > 0 ? n : -n;
    }

    public void close() {}

    @SuppressWarnings("all")
    synchronized int work(String label, int... extra) {
        int total = 0;
        label: for (int i = 0; i < extra.length; i++) {
            if (extra[i] == 0) { continue label; }
            else if (extra[i] < 0) { break; }
            total += extra[i];
        }
        for (int v : counts) { total += v; }
        while (total > 100) { total /= 2; }
        do { total++; } while (total % 2 == 1);
        switch (total) {
        case 0: return 0;
        default: total--;
        }
        try {
            Cipher c = Cipher.getInstance((String) ALGO);
            assert c != null : "cipher";
            if (c instanceof Object) { throw new IllegalStateException(ALGO); }
        } catch (Exception e) {
            total = Inner.class.hashCode() + super.hashCode();
        } finally {
            ;
        }
        synchronized (this) { total += this.counts.length; }
        return total;
    }
}
`

func TestGobRoundTrip(t *testing.T) {
	res := javaparser.Parse(gobSource)
	if len(res.Errors) != 0 {
		t.Fatalf("fixture does not parse cleanly: %v", res.Errors)
	}
	enc, err := javaast.GobEncode(res.Unit)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := javaast.GobDecode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	if got, want := javaast.Summary(dec), javaast.Summary(res.Unit); got != want {
		t.Fatalf("summary changed across round trip:\n got %q\nwant %q", got, want)
	}
	if got, want := shape(dec), shape(res.Unit); got != want {
		t.Fatalf("node shape changed across round trip:\n got %q\nwant %q", got, want)
	}

	// Re-encoding the decoded tree must reproduce the exact payload — the
	// artifact store's disk entries would otherwise churn on every warm run.
	re, err := javaast.GobEncode(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(enc), len(re))
	}
}

// shape renders every node in walk order with its dynamic type and position —
// a deep structural fingerprint that catches any dropped or reordered child.
func shape(cu *javaast.CompilationUnit) string {
	var sb bytes.Buffer
	javaast.Walk(cu, func(n javaast.Node) bool {
		fmt.Fprintf(&sb, "%T@%v;", n, n.Pos())
		if e, ok := n.(javaast.Expr); ok {
			fmt.Fprintf(&sb, "%s;", javaast.ExprString(e))
		}
		return true
	})
	for _, imp := range cu.Imports {
		fmt.Fprintf(&sb, "import %s %v %v;", imp.Path, imp.Wildcard, imp.Static)
	}
	return sb.String()
}

func TestGobDecodeGarbage(t *testing.T) {
	if _, err := javaast.GobDecode([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
