package javaast

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// Gob encoding of compilation units, the byte format behind the artifact
// store's parse artifacts (-cache-dir): a source file's AST is serialized
// once and re-read on warm runs instead of re-parsed. Every node field is
// exported and position info lives in plain javatok.Pos values, so gob
// round-trips the tree exactly; the interface-typed fields (Node, Stmt,
// Expr) need each concrete node type registered first.

var gobOnce sync.Once

// GobRegister registers every concrete AST node type with encoding/gob.
// Safe to call any number of times from any goroutine; Encode/Decode call
// it themselves.
func GobRegister() {
	gobOnce.Do(func() {
		for _, v := range []any{
			// Declarations.
			&CompilationUnit{}, &Import{}, &TypeDecl{}, &FieldDecl{},
			&MethodDecl{}, &Param{}, &TypeRef{}, &CatchClause{}, &SwitchCase{},
			// Statements.
			&Block{}, &LocalVarDecl{}, &ExprStmt{}, &IfStmt{}, &WhileStmt{},
			&DoStmt{}, &ForStmt{}, &ForEachStmt{}, &ReturnStmt{}, &ThrowStmt{},
			&TryStmt{}, &SwitchStmt{}, &BreakStmt{}, &ContinueStmt{},
			&SyncStmt{}, &LabeledStmt{}, &AssertStmt{}, &EmptyStmt{},
			// Expressions.
			&Literal{}, &Name{}, &FieldAccess{}, &Call{}, &New{}, &NewArray{},
			&ArrayInit{}, &Index{}, &Binary{}, &Unary{}, &Assign{}, &Cond{},
			&Cast{}, &InstanceOf{}, &This{}, &Super{}, &ClassLit{}, &Lambda{},
			&MethodRef{},
		} {
			gob.Register(v)
		}
	})
}

// GobEncode serializes a compilation unit.
func GobEncode(unit *CompilationUnit) ([]byte, error) {
	GobRegister()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(unit); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode deserializes a compilation unit previously encoded with
// GobEncode.
func GobDecode(b []byte) (*CompilationUnit, error) {
	GobRegister()
	var unit *CompilationUnit
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&unit); err != nil {
		return nil, err
	}
	return unit, nil
}
