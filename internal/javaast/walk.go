package javaast

// Walk traverses the AST rooted at n in depth-first order, calling fn for
// each node. If fn returns false for a node, its children are not visited.
// Nil children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *CompilationUnit:
		for _, im := range x.Imports {
			Walk(im, fn)
		}
		for _, t := range x.Types {
			Walk(t, fn)
		}
	case *Import:
	case *TypeDecl:
		for _, f := range x.Fields {
			Walk(f, fn)
		}
		for _, m := range x.Methods {
			Walk(m, fn)
		}
		for _, t := range x.Nested {
			Walk(t, fn)
		}
	case *FieldDecl:
		walkExpr(x.Init, fn)
	case *MethodDecl:
		for _, p := range x.Params {
			Walk(p, fn)
		}
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *Param:
	case *TypeRef:

	case *Block:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *LocalVarDecl:
		walkExpr(x.Init, fn)
	case *ExprStmt:
		walkExpr(x.X, fn)
	case *IfStmt:
		walkExpr(x.Cond, fn)
		walkStmt(x.Then, fn)
		walkStmt(x.Else, fn)
	case *WhileStmt:
		walkExpr(x.Cond, fn)
		walkStmt(x.Body, fn)
	case *DoStmt:
		walkStmt(x.Body, fn)
		walkExpr(x.Cond, fn)
	case *ForStmt:
		for _, s := range x.Init {
			Walk(s, fn)
		}
		walkExpr(x.Cond, fn)
		for _, e := range x.Post {
			walkExpr(e, fn)
		}
		walkStmt(x.Body, fn)
	case *ForEachStmt:
		if x.Var != nil {
			Walk(x.Var, fn)
		}
		walkExpr(x.Expr, fn)
		walkStmt(x.Body, fn)
	case *ReturnStmt:
		walkExpr(x.X, fn)
	case *ThrowStmt:
		walkExpr(x.X, fn)
	case *TryStmt:
		for _, r := range x.Resources {
			Walk(r, fn)
		}
		if x.Body != nil {
			Walk(x.Body, fn)
		}
		for _, c := range x.Catches {
			Walk(c, fn)
		}
		if x.Finally != nil {
			Walk(x.Finally, fn)
		}
	case *CatchClause:
		if x.Param != nil {
			Walk(x.Param, fn)
		}
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *SwitchStmt:
		walkExpr(x.Tag, fn)
		for _, c := range x.Cases {
			Walk(c, fn)
		}
	case *SwitchCase:
		for _, v := range x.Values {
			walkExpr(v, fn)
		}
		for _, s := range x.Body {
			walkStmt(s, fn)
		}
	case *SyncStmt:
		walkExpr(x.Lock, fn)
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *LabeledStmt:
		walkStmt(x.Stmt, fn)
	case *AssertStmt:
		walkExpr(x.Cond, fn)
		walkExpr(x.Msg, fn)
	case *BreakStmt, *ContinueStmt, *EmptyStmt:

	case *Literal, *Name, *This, *Super:
	case *FieldAccess:
		walkExpr(x.X, fn)
	case *Call:
		walkExpr(x.Recv, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *New:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *NewArray:
		for _, l := range x.Lens {
			walkExpr(l, fn)
		}
		for _, e := range x.Elems {
			walkExpr(e, fn)
		}
	case *ArrayInit:
		for _, e := range x.Elems {
			walkExpr(e, fn)
		}
	case *Index:
		walkExpr(x.X, fn)
		walkExpr(x.I, fn)
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Unary:
		walkExpr(x.X, fn)
	case *Assign:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Cond:
		walkExpr(x.C, fn)
		walkExpr(x.T, fn)
		walkExpr(x.F, fn)
	case *Cast:
		walkExpr(x.X, fn)
	case *InstanceOf:
		walkExpr(x.X, fn)
	case *ClassLit:
	case *Lambda:
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *MethodRef:
		walkExpr(x.Recv, fn)
	}
}

func walkExpr(e Expr, fn func(Node) bool) {
	if e != nil {
		Walk(e, fn)
	}
}

func walkStmt(s Stmt, fn func(Node) bool) {
	if s != nil {
		Walk(s, fn)
	}
}
