package javaast

import (
	"fmt"
	"strconv"
	"strings"
)

// ExprString renders an expression as compact Java-like source. It is used in
// diagnostics and parser tests; it is not a faithful pretty-printer (it fully
// parenthesizes binary expressions).
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return "<nil>"
	case *Literal:
		switch x.Kind {
		case StringLit:
			return strconv.Quote(x.Value)
		case CharLit:
			return "'" + x.Value + "'"
		case LongLit:
			return x.Value + "L"
		case FloatLit:
			return x.Value + "f"
		default:
			return x.Value
		}
	case *Name:
		return x.Ident
	case *FieldAccess:
		return ExprString(x.X) + "." + x.Name
	case *Call:
		var sb strings.Builder
		if x.Recv != nil {
			sb.WriteString(ExprString(x.Recv))
			sb.WriteString(".")
		}
		sb.WriteString(x.Name)
		sb.WriteString("(")
		sb.WriteString(exprList(x.Args))
		sb.WriteString(")")
		return sb.String()
	case *New:
		s := "new " + x.Type.String() + "(" + exprList(x.Args) + ")"
		if x.Body != nil {
			s += " {...}"
		}
		return s
	case *NewArray:
		s := "new " + x.Type.Name
		for _, l := range x.Lens {
			s += "[" + ExprString(l) + "]"
		}
		if x.HasInit {
			if len(x.Lens) == 0 {
				s += "[]"
			}
			s += "{" + exprList(x.Elems) + "}"
		}
		return s
	case *ArrayInit:
		return "{" + exprList(x.Elems) + "}"
	case *Index:
		return ExprString(x.X) + "[" + ExprString(x.I) + "]"
	case *Binary:
		return "(" + ExprString(x.L) + " " + x.Op + " " + ExprString(x.R) + ")"
	case *Unary:
		if x.Postfix {
			return ExprString(x.X) + x.Op
		}
		return x.Op + ExprString(x.X)
	case *Assign:
		return ExprString(x.L) + " " + x.Op + " " + ExprString(x.R)
	case *Cond:
		return "(" + ExprString(x.C) + " ? " + ExprString(x.T) + " : " + ExprString(x.F) + ")"
	case *Cast:
		return "(" + x.Type.String() + ") " + ExprString(x.X)
	case *InstanceOf:
		return ExprString(x.X) + " instanceof " + x.Type.String()
	case *This:
		return "this"
	case *Super:
		return "super"
	case *ClassLit:
		return x.Type.String() + ".class"
	case *Lambda:
		return "(" + strings.Join(x.Params, ", ") + ") -> {...}"
	case *MethodRef:
		return ExprString(x.Recv) + "::" + x.Name
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// Summary returns a one-line structural summary of a compilation unit, used
// in tests: "pkg a.b; class C{f:2 m:3} interface I{m:1}".
func Summary(cu *CompilationUnit) string {
	var sb strings.Builder
	if cu.Package != "" {
		fmt.Fprintf(&sb, "pkg %s; ", cu.Package)
	}
	for i, t := range cu.Types {
		if i > 0 {
			sb.WriteString(" ")
		}
		kind := "class"
		switch t.Kind {
		case InterfaceKind:
			kind = "interface"
		case EnumKind:
			kind = "enum"
		}
		fmt.Fprintf(&sb, "%s %s{f:%d m:%d}", kind, t.Name, len(t.Fields), len(t.Methods))
	}
	return sb.String()
}
