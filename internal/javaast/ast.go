// Package javaast defines the abstract syntax tree for the Java subset
// handled by the DiffCode analyzer: compilation units, type declarations,
// members, statements, and expressions. Nodes carry source positions so
// allocation sites can be identified by line (the paper's per-allocation-site
// heap abstraction labels abstract objects by statement label).
package javaast

import "repro/internal/javatok"

// Node is implemented by every AST node.
type Node interface {
	Pos() javatok.Pos
}

// ---------------------------------------------------------------------------
// Compilation units and declarations
// ---------------------------------------------------------------------------

// CompilationUnit is a single .java source file.
type CompilationUnit struct {
	Package string    // dotted package name, "" if absent
	Imports []*Import // import declarations in source order
	Types   []*TypeDecl
	P       javatok.Pos
}

func (n *CompilationUnit) Pos() javatok.Pos { return n.P }

// Import is a single import declaration.
type Import struct {
	Path     string // dotted path, without the trailing ".*"
	Wildcard bool   // import a.b.*;
	Static   bool   // import static a.b.C.m;
	P        javatok.Pos
}

func (n *Import) Pos() javatok.Pos { return n.P }

// TypeKind distinguishes class-like declarations.
type TypeKind int

// Type declaration kinds.
const (
	ClassKind TypeKind = iota
	InterfaceKind
	EnumKind
)

// TypeDecl is a class, interface, or enum declaration.
type TypeDecl struct {
	Kind       TypeKind
	Name       string
	Modifiers  []string
	Extends    string   // superclass (or first extended interface), "" if none
	Implements []string // implemented interfaces
	Fields     []*FieldDecl
	Methods    []*MethodDecl
	Nested     []*TypeDecl
	EnumConsts []string // for enums
	P          javatok.Pos
}

func (n *TypeDecl) Pos() javatok.Pos { return n.P }

// IsStatic reports whether the declaration has the static modifier.
func (n *TypeDecl) IsStatic() bool { return hasMod(n.Modifiers, "static") }

// FieldDecl is one declarator of a field declaration. A source declaration
// with several declarators ("Cipher enc, dec;") is split into several
// FieldDecls sharing the type.
type FieldDecl struct {
	Name      string
	Type      *TypeRef
	Modifiers []string
	Init      Expr // nil if absent
	P         javatok.Pos
}

func (n *FieldDecl) Pos() javatok.Pos { return n.P }

// IsStatic reports whether the field has the static modifier.
func (n *FieldDecl) IsStatic() bool { return hasMod(n.Modifiers, "static") }

// IsFinal reports whether the field has the final modifier.
func (n *FieldDecl) IsFinal() bool { return hasMod(n.Modifiers, "final") }

// MethodDecl is a method, constructor (Name == enclosing class name and
// IsConstructor set), or initializer block.
type MethodDecl struct {
	Name          string
	Modifiers     []string
	Params        []*Param
	ReturnType    *TypeRef // nil for constructors and initializer blocks
	Throws        []string
	Body          *Block // nil for abstract/native methods
	IsConstructor bool
	P             javatok.Pos
}

func (n *MethodDecl) Pos() javatok.Pos { return n.P }

// IsStatic reports whether the method has the static modifier.
func (n *MethodDecl) IsStatic() bool { return hasMod(n.Modifiers, "static") }

// Param is a formal method parameter.
type Param struct {
	Name     string
	Type     *TypeRef
	Variadic bool
	P        javatok.Pos
}

func (n *Param) Pos() javatok.Pos { return n.P }

// TypeRef is a reference to a type in source: a possibly-qualified name with
// an array dimension count. Generic arguments are parsed but erased, which
// matches the analyzer's untyped treatment of collections.
type TypeRef struct {
	Name string // "int", "String", "javax.crypto.Cipher"
	Dims int    // number of [] pairs
	P    javatok.Pos
}

func (n *TypeRef) Pos() javatok.Pos { return n.P }

// Base returns the unqualified simple name (last dotted segment).
func (n *TypeRef) Base() string {
	for i := len(n.Name) - 1; i >= 0; i-- {
		if n.Name[i] == '.' {
			return n.Name[i+1:]
		}
	}
	return n.Name
}

// String renders the type as it would appear in source, minus generics.
func (n *TypeRef) String() string {
	s := n.Name
	for i := 0; i < n.Dims; i++ {
		s += "[]"
	}
	return s
}

func hasMod(mods []string, m string) bool {
	for _, x := range mods {
		if x == m {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a { ... } statement sequence.
type Block struct {
	Stmts []Stmt
	P     javatok.Pos
}

// LocalVarDecl declares one local variable (multi-declarator statements are
// split, like fields).
type LocalVarDecl struct {
	Name string
	Type *TypeRef
	Init Expr // nil if absent
	P    javatok.Pos
}

// ExprStmt is an expression used as a statement (call, assignment, ...).
type ExprStmt struct {
	X Expr
	P javatok.Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
	P    javatok.Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	P    javatok.Pos
}

// DoStmt is a do/while loop.
type DoStmt struct {
	Body Stmt
	Cond Expr
	P    javatok.Pos
}

// ForStmt is a classic for loop. Init holds declarations or expression
// statements; Post holds update expressions.
type ForStmt struct {
	Init []Stmt
	Cond Expr // nil if absent
	Post []Expr
	Body Stmt
	P    javatok.Pos
}

// ForEachStmt is an enhanced for loop.
type ForEachStmt struct {
	Var  *LocalVarDecl // Init is nil; the iteration variable
	Expr Expr
	Body Stmt
	P    javatok.Pos
}

// ReturnStmt returns from the enclosing method.
type ReturnStmt struct {
	X Expr // nil for bare return
	P javatok.Pos
}

// ThrowStmt throws an exception.
type ThrowStmt struct {
	X Expr
	P javatok.Pos
}

// TryStmt is try/catch/finally, including try-with-resources.
type TryStmt struct {
	Resources []*LocalVarDecl
	Body      *Block
	Catches   []*CatchClause
	Finally   *Block // nil if absent
	P         javatok.Pos
}

// CatchClause is one catch arm. Multi-catch types are all listed.
type CatchClause struct {
	Param *Param
	Types []string // additional multi-catch type names (beyond Param.Type)
	Body  *Block
	P     javatok.Pos
}

func (n *CatchClause) Pos() javatok.Pos { return n.P }

// SwitchStmt is a classic switch statement.
type SwitchStmt struct {
	Tag   Expr
	Cases []*SwitchCase
	P     javatok.Pos
}

// SwitchCase is one case (or default, when Values is empty) arm.
type SwitchCase struct {
	Values []Expr // empty means default
	Body   []Stmt
	P      javatok.Pos
}

func (n *SwitchCase) Pos() javatok.Pos { return n.P }

// BreakStmt breaks out of a loop or switch.
type BreakStmt struct {
	Label string
	P     javatok.Pos
}

// ContinueStmt continues a loop.
type ContinueStmt struct {
	Label string
	P     javatok.Pos
}

// SyncStmt is a synchronized block.
type SyncStmt struct {
	Lock Expr
	Body *Block
	P    javatok.Pos
}

// LabeledStmt is label: stmt.
type LabeledStmt struct {
	Label string
	Stmt  Stmt
	P     javatok.Pos
}

// AssertStmt is assert cond [: msg];
type AssertStmt struct {
	Cond Expr
	Msg  Expr // nil if absent
	P    javatok.Pos
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct {
	P javatok.Pos
}

func (n *Block) Pos() javatok.Pos        { return n.P }
func (n *LocalVarDecl) Pos() javatok.Pos { return n.P }
func (n *ExprStmt) Pos() javatok.Pos     { return n.P }
func (n *IfStmt) Pos() javatok.Pos       { return n.P }
func (n *WhileStmt) Pos() javatok.Pos    { return n.P }
func (n *DoStmt) Pos() javatok.Pos       { return n.P }
func (n *ForStmt) Pos() javatok.Pos      { return n.P }
func (n *ForEachStmt) Pos() javatok.Pos  { return n.P }
func (n *ReturnStmt) Pos() javatok.Pos   { return n.P }
func (n *ThrowStmt) Pos() javatok.Pos    { return n.P }
func (n *TryStmt) Pos() javatok.Pos      { return n.P }
func (n *SwitchStmt) Pos() javatok.Pos   { return n.P }
func (n *BreakStmt) Pos() javatok.Pos    { return n.P }
func (n *ContinueStmt) Pos() javatok.Pos { return n.P }
func (n *SyncStmt) Pos() javatok.Pos     { return n.P }
func (n *LabeledStmt) Pos() javatok.Pos  { return n.P }
func (n *AssertStmt) Pos() javatok.Pos   { return n.P }
func (n *EmptyStmt) Pos() javatok.Pos    { return n.P }

func (*Block) stmtNode()        {}
func (*LocalVarDecl) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*ForEachStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode()   {}
func (*ThrowStmt) stmtNode()    {}
func (*TryStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*SyncStmt) stmtNode()     {}
func (*LabeledStmt) stmtNode()  {}
func (*AssertStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// LitKind classifies literal expressions.
type LitKind int

// Literal kinds.
const (
	IntLit LitKind = iota
	LongLit
	FloatLit
	DoubleLit
	CharLit
	StringLit
	BoolLit
	NullLit
)

// Literal is a literal constant. Value holds the source text for numeric
// literals, the decoded value for string/char literals, and "true"/"false"
// for booleans.
type Literal struct {
	Kind  LitKind
	Value string
	P     javatok.Pos
}

// Name is an unqualified identifier reference (variable, field, type, ...).
type Name struct {
	Ident string
	P     javatok.Pos
}

// FieldAccess is X.Name (also covers qualified names like Cipher.ENCRYPT_MODE
// and package-qualified types; disambiguation is the analyzer's job).
type FieldAccess struct {
	X    Expr
	Name string
	P    javatok.Pos
}

// Call is a method invocation. Recv is nil for unqualified calls.
type Call struct {
	Recv Expr // receiver or qualifier; nil for this-calls
	Name string
	Args []Expr
	P    javatok.Pos
}

// New is an object creation expression: new Type(args).
type New struct {
	Type *TypeRef
	Args []Expr
	// Body is non-nil for anonymous class bodies; its contents are parsed
	// but the analyzer treats the object as an opaque allocation.
	Body *TypeDecl
	P    javatok.Pos
}

// NewArray is an array creation: new T[len] or new T[]{...}.
type NewArray struct {
	Type    *TypeRef
	Lens    []Expr // dimension lengths; may be empty with initializer
	Elems   []Expr // initializer elements, nil if absent
	HasInit bool
	P       javatok.Pos
}

// ArrayInit is a bare { a, b, c } initializer (only valid in declarations).
type ArrayInit struct {
	Elems []Expr
	P     javatok.Pos
}

// Index is array indexing: X[I].
type Index struct {
	X Expr
	I Expr
	P javatok.Pos
}

// Binary is a binary operation, Op as spelled in source ("+", "==", ...).
type Binary struct {
	Op   string
	L, R Expr
	P    javatok.Pos
}

// Unary is a prefix unary operation; Postfix marks x++ / x--.
type Unary struct {
	Op      string
	X       Expr
	Postfix bool
	P       javatok.Pos
}

// Assign is an assignment; Op is "=", "+=", etc.
type Assign struct {
	Op   string
	L, R Expr
	P    javatok.Pos
}

// Cond is the ternary conditional c ? t : f.
type Cond struct {
	C, T, F Expr
	P       javatok.Pos
}

// Cast is (Type) X.
type Cast struct {
	Type *TypeRef
	X    Expr
	P    javatok.Pos
}

// InstanceOf is X instanceof Type.
type InstanceOf struct {
	X    Expr
	Type *TypeRef
	P    javatok.Pos
}

// This is the this reference.
type This struct {
	P javatok.Pos
}

// Super is the super reference (only as call qualifier).
type Super struct {
	P javatok.Pos
}

// ClassLit is Type.class.
type ClassLit struct {
	Type *TypeRef
	P    javatok.Pos
}

// Lambda is a lambda expression; the analyzer treats it as opaque.
type Lambda struct {
	Params []string
	// Body is either an Expr or a *Block; stored as Node.
	Body Node
	P    javatok.Pos
}

// MethodRef is a method reference like Type::method; treated as opaque.
type MethodRef struct {
	Recv Expr
	Name string
	P    javatok.Pos
}

func (n *Literal) Pos() javatok.Pos     { return n.P }
func (n *Name) Pos() javatok.Pos        { return n.P }
func (n *FieldAccess) Pos() javatok.Pos { return n.P }
func (n *Call) Pos() javatok.Pos        { return n.P }
func (n *New) Pos() javatok.Pos         { return n.P }
func (n *NewArray) Pos() javatok.Pos    { return n.P }
func (n *ArrayInit) Pos() javatok.Pos   { return n.P }
func (n *Index) Pos() javatok.Pos       { return n.P }
func (n *Binary) Pos() javatok.Pos      { return n.P }
func (n *Unary) Pos() javatok.Pos       { return n.P }
func (n *Assign) Pos() javatok.Pos      { return n.P }
func (n *Cond) Pos() javatok.Pos        { return n.P }
func (n *Cast) Pos() javatok.Pos        { return n.P }
func (n *InstanceOf) Pos() javatok.Pos  { return n.P }
func (n *This) Pos() javatok.Pos        { return n.P }
func (n *Super) Pos() javatok.Pos       { return n.P }
func (n *ClassLit) Pos() javatok.Pos    { return n.P }
func (n *Lambda) Pos() javatok.Pos      { return n.P }
func (n *MethodRef) Pos() javatok.Pos   { return n.P }

func (*Literal) exprNode()     {}
func (*Name) exprNode()        {}
func (*FieldAccess) exprNode() {}
func (*Call) exprNode()        {}
func (*New) exprNode()         {}
func (*NewArray) exprNode()    {}
func (*ArrayInit) exprNode()   {}
func (*Index) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Unary) exprNode()       {}
func (*Assign) exprNode()      {}
func (*Cond) exprNode()        {}
func (*Cast) exprNode()        {}
func (*InstanceOf) exprNode()  {}
func (*This) exprNode()        {}
func (*Super) exprNode()       {}
func (*ClassLit) exprNode()    {}
func (*Lambda) exprNode()      {}
func (*MethodRef) exprNode()   {}
