// Package cryptoapi models the slice of the Java Cryptography Architecture
// that DiffCode targets: the six API classes of the paper's Figure 5, their
// factory/constructor/configuration methods, and domain knowledge about
// transformation strings, algorithms, modes, and providers that the security
// rules reason about.
package cryptoapi

import "strings"

// Target API class names (paper Figure 5).
const (
	Cipher          = "Cipher"
	IvParameterSpec = "IvParameterSpec"
	MessageDigest   = "MessageDigest"
	SecretKeySpec   = "SecretKeySpec"
	SecureRandom    = "SecureRandom"
	PBEKeySpec      = "PBEKeySpec"
	// Mac is not a clustering target but appears in rule R13.
	Mac = "Mac"
)

// TargetClasses lists the classes for which usage changes are learned, in the
// paper's order.
var TargetClasses = []string{
	Cipher, IvParameterSpec, MessageDigest, SecretKeySpec, SecureRandom,
	PBEKeySpec,
}

// IsTarget reports whether name is one of the six target classes.
func IsTarget(name string) bool {
	for _, t := range TargetClasses {
		if t == name {
			return true
		}
	}
	return false
}

// MethodSig is a method signature within the modeled API. Param types use
// simple names ("String", "int", "byte[]", "Key", ...).
type MethodSig struct {
	Class  string   // declaring class
	Name   string   // method name, "<init>" for constructors
	Params []string // parameter type names
	Static bool     // static (factory) method
	Ret    string   // return type, "" for void
}

// String renders "Cipher.getInstance(String)".
func (m MethodSig) String() string {
	return m.Class + "." + m.Name + "(" + strings.Join(m.Params, ",") + ")"
}

// Key renders a compact identity key used for event deduplication.
func (m MethodSig) Key() string { return m.String() }

// apiMethods lists the modeled methods. The analyzer matches calls by class,
// name and arity (Java-style overload resolution by count; the abstraction
// does not need exact param-type matching).
var apiMethods = []MethodSig{
	// Cipher.
	{Class: Cipher, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: Cipher},
	{Class: Cipher, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: Cipher},
	{Class: Cipher, Name: "init", Params: []string{"int", "Key"}},
	{Class: Cipher, Name: "init", Params: []string{"int", "Key", "AlgorithmParameterSpec"}},
	{Class: Cipher, Name: "init", Params: []string{"int", "Key", "AlgorithmParameterSpec", "SecureRandom"}},
	{Class: Cipher, Name: "init", Params: []string{"int", "Certificate"}},
	{Class: Cipher, Name: "doFinal", Params: []string{"byte[]"}, Ret: "byte[]"},
	{Class: Cipher, Name: "doFinal", Params: []string{}, Ret: "byte[]"},
	{Class: Cipher, Name: "doFinal", Params: []string{"byte[]", "int", "int"}, Ret: "byte[]"},
	{Class: Cipher, Name: "update", Params: []string{"byte[]"}, Ret: "byte[]"},
	{Class: Cipher, Name: "wrap", Params: []string{"Key"}, Ret: "byte[]"},
	{Class: Cipher, Name: "unwrap", Params: []string{"byte[]", "String", "int"}, Ret: "Key"},

	// IvParameterSpec.
	{Class: IvParameterSpec, Name: "<init>", Params: []string{"byte[]"}},
	{Class: IvParameterSpec, Name: "<init>", Params: []string{"byte[]", "int", "int"}},

	// MessageDigest.
	{Class: MessageDigest, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: MessageDigest},
	{Class: MessageDigest, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: MessageDigest},
	{Class: MessageDigest, Name: "update", Params: []string{"byte[]"}},
	{Class: MessageDigest, Name: "digest", Params: []string{}, Ret: "byte[]"},
	{Class: MessageDigest, Name: "digest", Params: []string{"byte[]"}, Ret: "byte[]"},
	{Class: MessageDigest, Name: "reset", Params: []string{}},

	// SecretKeySpec.
	{Class: SecretKeySpec, Name: "<init>", Params: []string{"byte[]", "String"}},
	{Class: SecretKeySpec, Name: "<init>", Params: []string{"byte[]", "int", "int", "String"}},

	// SecureRandom.
	{Class: SecureRandom, Name: "<init>", Params: []string{}},
	{Class: SecureRandom, Name: "<init>", Params: []string{"byte[]"}},
	{Class: SecureRandom, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: SecureRandom},
	{Class: SecureRandom, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: SecureRandom},
	{Class: SecureRandom, Name: "getInstanceStrong", Params: []string{}, Static: true, Ret: SecureRandom},
	{Class: SecureRandom, Name: "setSeed", Params: []string{"byte[]"}},
	{Class: SecureRandom, Name: "setSeed", Params: []string{"long"}},
	{Class: SecureRandom, Name: "nextBytes", Params: []string{"byte[]"}},
	{Class: SecureRandom, Name: "generateSeed", Params: []string{"int"}, Ret: "byte[]"},

	// PBEKeySpec. <init>(char[] password, byte[] salt, int iterations, int keyLen)
	{Class: PBEKeySpec, Name: "<init>", Params: []string{"char[]"}},
	{Class: PBEKeySpec, Name: "<init>", Params: []string{"char[]", "byte[]", "int"}},
	{Class: PBEKeySpec, Name: "<init>", Params: []string{"char[]", "byte[]", "int", "int"}},

	// Mac (needed by composite rule R13).
	{Class: Mac, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: Mac},
	{Class: Mac, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: Mac},
	{Class: Mac, Name: "init", Params: []string{"Key"}},
	{Class: Mac, Name: "doFinal", Params: []string{"byte[]"}, Ret: "byte[]"},
}

// LookupMethod resolves a call on class by name and arity. It returns the
// modeled signature and true on a match. Overloads are disambiguated by
// arity only, which is sufficient for the modeled API surface.
func LookupMethod(class, name string, arity int) (MethodSig, bool) {
	for _, m := range apiMethods {
		if m.Class == class && m.Name == name && len(m.Params) == arity {
			return m, true
		}
	}
	return MethodSig{}, false
}

// MethodsOf returns all modeled methods of a class (the paper's Methods_t
// restricted to the declaring class; argument-accepting methods of other
// classes are discovered through the DAG expansion instead).
func MethodsOf(class string) []MethodSig {
	var out []MethodSig
	for _, m := range apiMethods {
		if m.Class == class {
			out = append(out, m)
		}
	}
	return out
}

// IsAPIClass reports whether the simple class name belongs to the modeled
// API (target classes, Mac, and the extended non-target surface).
func IsAPIClass(name string) bool {
	return IsTarget(name) || name == Mac || extendedClasses[name]
}

// knownIntConstants maps qualified API constant field accesses to their
// symbolic names. The abstraction keeps these symbolic (Cipher.ENCRYPT_MODE
// is more meaningful than its numeric value 1).
var knownIntConstants = map[string]string{
	"Cipher.ENCRYPT_MODE":            "ENCRYPT_MODE",
	"Cipher.DECRYPT_MODE":            "DECRYPT_MODE",
	"Cipher.WRAP_MODE":               "WRAP_MODE",
	"Cipher.UNWRAP_MODE":             "UNWRAP_MODE",
	"Cipher.PUBLIC_KEY":              "PUBLIC_KEY",
	"Cipher.PRIVATE_KEY":             "PRIVATE_KEY",
	"Cipher.SECRET_KEY":              "SECRET_KEY",
	"Build.VERSION.SDK_INT":          "SDK_INT",
	"Build.VERSION_CODES.JELLY_BEAN": "16",
}

// LookupConstant resolves a qualified field access like
// "Cipher.ENCRYPT_MODE" to its symbolic abstract value.
func LookupConstant(qualified string) (string, bool) {
	v, ok := knownIntConstants[qualified]
	return v, ok
}

// ---------------------------------------------------------------------------
// Transformation strings and algorithm knowledge
// ---------------------------------------------------------------------------

// Transformation is a parsed cipher transformation string
// "ALG/MODE/PADDING". Mode and Padding are empty when the string names only
// the algorithm, in which case Java defaults apply (ECB/PKCS5Padding for
// block ciphers — the root cause behind rule R7).
type Transformation struct {
	Algorithm string
	Mode      string
	Padding   string
}

// ParseTransformation splits a Cipher.getInstance transformation string.
func ParseTransformation(s string) Transformation {
	parts := strings.SplitN(s, "/", 3)
	t := Transformation{Algorithm: parts[0]}
	if len(parts) > 1 {
		t.Mode = parts[1]
	}
	if len(parts) > 2 {
		t.Padding = parts[2]
	}
	return t
}

// EffectiveMode returns the mode the JCA would actually use: the explicit
// mode, or ECB when only a block-cipher algorithm is named.
func (t Transformation) EffectiveMode() string {
	if t.Mode != "" {
		return t.Mode
	}
	switch strings.ToUpper(t.Algorithm) {
	case "AES", "DES", "DESEDE", "BLOWFISH", "RC2":
		return "ECB"
	}
	return ""
}

// String renders the transformation back to source form.
func (t Transformation) String() string {
	s := t.Algorithm
	if t.Mode != "" {
		s += "/" + t.Mode
		if t.Padding != "" {
			s += "/" + t.Padding
		}
	}
	return s
}

// WeakDigests are hash algorithms with practical or theoretical collision
// attacks (R1 and its MD5 sibling).
var WeakDigests = map[string]bool{
	"MD2": true, "MD4": true, "MD5": true,
	"SHA1": true, "SHA-1": true, "SHA": true,
}

// StrongDigestFor suggests the replacement digest for a weak one.
func StrongDigestFor(alg string) string {
	switch strings.ToUpper(alg) {
	case "MD2", "MD4", "MD5":
		return "SHA-256"
	case "SHA1", "SHA-1", "SHA":
		return "SHA-256"
	}
	return alg
}

// WeakCipherAlgorithms are symmetric ciphers no longer considered secure
// (R8 and related fixes).
var WeakCipherAlgorithms = map[string]bool{
	"DES": true, "DESede": false, "RC2": true, "RC4": true, "ARCFOUR": true,
	"Blowfish": false,
}

// IsWeakCipherAlgorithm reports whether the named algorithm is broken.
func IsWeakCipherAlgorithm(alg string) bool {
	return WeakCipherAlgorithms[alg] || WeakCipherAlgorithms[strings.ToUpper(alg)]
}

// FeedbackModes are cipher modes that require an initialization vector.
var FeedbackModes = map[string]bool{
	"CBC": true, "CFB": true, "OFB": true, "CTR": true, "GCM": true,
}

// SecureModes are the modes fixes in the mined data moved to (Figure 8).
var SecureModes = []string{"CBC", "GCM"}

// Providers.
const (
	ProviderBouncyCastle = "BC"
	ProviderSun          = "SunJCE"
)

// SHA1PRNG is the SecureRandom algorithm rule R3 prescribes.
const SHA1PRNG = "SHA1PRNG"

// MinPBEIterations is the threshold of rule R2 / CL4.
const MinPBEIterations = 1000
