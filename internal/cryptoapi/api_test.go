package cryptoapi

import "testing"

func TestTargetClasses(t *testing.T) {
	if len(TargetClasses) != 6 {
		t.Fatalf("target classes = %d, want 6 (paper Figure 5)", len(TargetClasses))
	}
	want := []string{Cipher, IvParameterSpec, MessageDigest, SecretKeySpec,
		SecureRandom, PBEKeySpec}
	for i, w := range want {
		if TargetClasses[i] != w {
			t.Errorf("class %d = %s, want %s", i, TargetClasses[i], w)
		}
	}
	for _, c := range TargetClasses {
		if !IsTarget(c) {
			t.Errorf("IsTarget(%s) = false", c)
		}
		if !IsAPIClass(c) {
			t.Errorf("IsAPIClass(%s) = false", c)
		}
	}
	if IsTarget(Mac) {
		t.Error("Mac must not be a clustering target")
	}
	if !IsAPIClass(Mac) {
		t.Error("Mac must be a modeled API class (rule R13)")
	}
	if IsTarget("String") || IsAPIClass("HashMap") {
		t.Error("non-API classes misclassified")
	}
}

func TestLookupMethod(t *testing.T) {
	cases := []struct {
		class, name string
		arity       int
		found       bool
		static_     bool
		ret         string
	}{
		{Cipher, "getInstance", 1, true, true, Cipher},
		{Cipher, "getInstance", 2, true, true, Cipher},
		{Cipher, "init", 2, true, false, ""},
		{Cipher, "init", 3, true, false, ""},
		{Cipher, "doFinal", 1, true, false, "byte[]"},
		{IvParameterSpec, "<init>", 1, true, false, ""},
		{MessageDigest, "digest", 0, true, false, "byte[]"},
		{SecureRandom, "getInstanceStrong", 0, true, true, SecureRandom},
		{SecureRandom, "setSeed", 1, true, false, ""},
		{PBEKeySpec, "<init>", 4, true, false, ""},
		{Mac, "getInstance", 1, true, true, Mac},
		{Cipher, "nonsense", 1, false, false, ""},
		{Cipher, "init", 9, false, false, ""},
	}
	for _, c := range cases {
		m, ok := LookupMethod(c.class, c.name, c.arity)
		if ok != c.found {
			t.Errorf("LookupMethod(%s.%s/%d) found = %t", c.class, c.name, c.arity, ok)
			continue
		}
		if !ok {
			continue
		}
		if m.Static != c.static_ || m.Ret != c.ret {
			t.Errorf("%s: static=%t ret=%q, want static=%t ret=%q",
				m, m.Static, m.Ret, c.static_, c.ret)
		}
	}
}

func TestMethodsOf(t *testing.T) {
	ms := MethodsOf(Cipher)
	if len(ms) < 5 {
		t.Errorf("Cipher methods = %d, want several", len(ms))
	}
	for _, m := range ms {
		if m.Class != Cipher {
			t.Errorf("MethodsOf(Cipher) returned %s", m)
		}
	}
	if got := MethodsOf("Nothing"); got != nil {
		t.Errorf("MethodsOf(unknown) = %v", got)
	}
}

func TestMethodSigString(t *testing.T) {
	m, _ := LookupMethod(Cipher, "getInstance", 1)
	if got := m.String(); got != "Cipher.getInstance(String)" {
		t.Errorf("String() = %q", got)
	}
	if m.Key() != m.String() {
		t.Error("Key should equal String")
	}
}

func TestLookupConstant(t *testing.T) {
	if v, ok := LookupConstant("Cipher.ENCRYPT_MODE"); !ok || v != "ENCRYPT_MODE" {
		t.Errorf("ENCRYPT_MODE lookup = %q, %t", v, ok)
	}
	if _, ok := LookupConstant("Cipher.NOT_A_CONSTANT"); ok {
		t.Error("unknown constant resolved")
	}
}

func TestParseTransformation(t *testing.T) {
	cases := []struct {
		in        string
		alg, mode string
		pad       string
		effective string
	}{
		{"AES", "AES", "", "", "ECB"},
		{"AES/CBC/PKCS5Padding", "AES", "CBC", "PKCS5Padding", "CBC"},
		{"AES/GCM/NoPadding", "AES", "GCM", "NoPadding", "GCM"},
		{"DES", "DES", "", "", "ECB"},
		{"RSA", "RSA", "", "", ""},
		{"RSA/ECB/PKCS1Padding", "RSA", "ECB", "PKCS1Padding", "ECB"},
		{"Blowfish", "Blowfish", "", "", "ECB"},
	}
	for _, c := range cases {
		tr := ParseTransformation(c.in)
		if tr.Algorithm != c.alg || tr.Mode != c.mode || tr.Padding != c.pad {
			t.Errorf("%s: parsed %+v", c.in, tr)
		}
		if got := tr.EffectiveMode(); got != c.effective {
			t.Errorf("%s: effective mode = %q, want %q", c.in, got, c.effective)
		}
		if tr.String() != c.in {
			t.Errorf("%s: round trip = %q", c.in, tr.String())
		}
	}
}

func TestDigestKnowledge(t *testing.T) {
	for _, weak := range []string{"MD5", "SHA-1", "SHA1", "MD2"} {
		if !WeakDigests[weak] {
			t.Errorf("WeakDigests[%s] = false", weak)
		}
		if StrongDigestFor(weak) != "SHA-256" {
			t.Errorf("StrongDigestFor(%s) = %s", weak, StrongDigestFor(weak))
		}
	}
	if WeakDigests["SHA-256"] {
		t.Error("SHA-256 flagged weak")
	}
	if StrongDigestFor("SHA-512") != "SHA-512" {
		t.Error("strong digest should map to itself")
	}
}

func TestCipherKnowledge(t *testing.T) {
	if !IsWeakCipherAlgorithm("DES") || !IsWeakCipherAlgorithm("RC4") {
		t.Error("DES/RC4 not flagged weak")
	}
	if IsWeakCipherAlgorithm("AES") {
		t.Error("AES flagged weak")
	}
	for _, m := range []string{"CBC", "GCM", "CTR"} {
		if !FeedbackModes[m] {
			t.Errorf("FeedbackModes[%s] = false", m)
		}
	}
	if FeedbackModes["ECB"] {
		t.Error("ECB is not a feedback mode")
	}
}
