// Extended JCA surface beyond the paper's Figure 5: TLS context and
// hostname verification, key storage, and key generation. These classes
// back the shipped rule packs (CryptoGuard taxonomy, the "Java
// Cryptography Uses in the Wild" survey) — they are modeled API classes
// whose usage events the interpreter records, but they are NOT mining
// targets: TargetClasses stays the paper's six, so mining/clustering
// output is unchanged.

package cryptoapi

import "strings"

// Extended API class names.
const (
	SSLContext          = "SSLContext"
	HttpsURLConnection  = "HttpsURLConnection"
	KeyStore            = "KeyStore"
	KeyGenerator        = "KeyGenerator"
	KeyPairGenerator    = "KeyPairGenerator"
	TrustManagerFactory = "TrustManagerFactory"
)

// extendedClasses is the modeled-but-not-mined surface.
var extendedClasses = map[string]bool{
	SSLContext:          true,
	HttpsURLConnection:  true,
	KeyStore:            true,
	KeyGenerator:        true,
	KeyPairGenerator:    true,
	TrustManagerFactory: true,
}

// IsExtendedClass reports whether the simple class name belongs to the
// extended (non-target) modeled surface.
func IsExtendedClass(name string) bool { return extendedClasses[name] }

// extendedMethods is appended to apiMethods at init.
var extendedMethods = []MethodSig{
	// SSLContext.
	{Class: SSLContext, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: SSLContext},
	{Class: SSLContext, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: SSLContext},
	{Class: SSLContext, Name: "init", Params: []string{"KeyManager[]", "TrustManager[]", "SecureRandom"}},
	{Class: SSLContext, Name: "getSocketFactory", Params: []string{}, Ret: "SSLSocketFactory"},

	// HttpsURLConnection hostname verification. setDefaultHostnameVerifier
	// is static void: the interpreter records it as a class-level event.
	{Class: HttpsURLConnection, Name: "setDefaultHostnameVerifier", Params: []string{"HostnameVerifier"}, Static: true},
	{Class: HttpsURLConnection, Name: "setDefaultSSLSocketFactory", Params: []string{"SSLSocketFactory"}, Static: true},
	{Class: HttpsURLConnection, Name: "setHostnameVerifier", Params: []string{"HostnameVerifier"}},

	// KeyStore.
	{Class: KeyStore, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: KeyStore},
	{Class: KeyStore, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: KeyStore},
	{Class: KeyStore, Name: "load", Params: []string{"InputStream", "char[]"}},
	{Class: KeyStore, Name: "store", Params: []string{"OutputStream", "char[]"}},
	{Class: KeyStore, Name: "getKey", Params: []string{"String", "char[]"}, Ret: "Key"},

	// KeyGenerator (symmetric keys).
	{Class: KeyGenerator, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: KeyGenerator},
	{Class: KeyGenerator, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: KeyGenerator},
	{Class: KeyGenerator, Name: "init", Params: []string{"int"}},
	{Class: KeyGenerator, Name: "init", Params: []string{"int", "SecureRandom"}},
	{Class: KeyGenerator, Name: "init", Params: []string{"SecureRandom"}},
	{Class: KeyGenerator, Name: "generateKey", Params: []string{}, Ret: "SecretKey"},

	// KeyPairGenerator (asymmetric keys).
	{Class: KeyPairGenerator, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: KeyPairGenerator},
	{Class: KeyPairGenerator, Name: "getInstance", Params: []string{"String", "String"}, Static: true, Ret: KeyPairGenerator},
	{Class: KeyPairGenerator, Name: "initialize", Params: []string{"int"}},
	{Class: KeyPairGenerator, Name: "initialize", Params: []string{"int", "SecureRandom"}},
	{Class: KeyPairGenerator, Name: "generateKeyPair", Params: []string{}, Ret: "KeyPair"},

	// TrustManagerFactory.
	{Class: TrustManagerFactory, Name: "getInstance", Params: []string{"String"}, Static: true, Ret: TrustManagerFactory},
	{Class: TrustManagerFactory, Name: "init", Params: []string{"KeyStore"}},
}

func init() { apiMethods = append(apiMethods, extendedMethods...) }

// AllMethods returns every modeled method signature. The slice is shared;
// callers must not mutate it.
func AllMethods() []MethodSig { return apiMethods }

// AllClasses returns every modeled class name (targets, Mac, extended) in
// a stable order.
func AllClasses() []string {
	out := append([]string{}, TargetClasses...)
	out = append(out, Mac,
		SSLContext, HttpsURLConnection, KeyStore, KeyGenerator,
		KeyPairGenerator, TrustManagerFactory)
	return out
}

// ---------------------------------------------------------------------------
// TLS / key-size / keystore knowledge
// ---------------------------------------------------------------------------

// WeakTLSProtocols are SSLContext.getInstance arguments selecting broken
// or deprecated protocol versions (POODLE, BEAST; TLS <1.2 deprecated by
// RFC 8996).
var WeakTLSProtocols = map[string]bool{
	"SSL": true, "SSLv2": true, "SSLv3": true,
	"TLSv1": true, "TLSv1.1": true,
}

// IsWeakTLSProtocol reports whether the protocol string is deprecated.
func IsWeakTLSProtocol(p string) bool { return WeakTLSProtocols[p] }

// WeakMacAlgorithms are Mac.getInstance arguments built on broken digests.
var WeakMacAlgorithms = map[string]bool{
	"HmacMD5": true, "HmacSHA1": true,
}

// MinSymmetricKeyBits is the minimum acceptable symmetric key size
// (KeyGenerator.init below this is flagged).
const MinSymmetricKeyBits = 128

// MinRSAKeyBits is the minimum acceptable RSA/DSA modulus
// (KeyPairGenerator.initialize below this is flagged).
const MinRSAKeyBits = 2048

// WeakKeystoreTypes are KeyStore.getInstance types with broken integrity
// protection (JKS/JCEKS use weak custom ciphers; PKCS12 is the fix).
var WeakKeystoreTypes = map[string]bool{
	"JKS": true, "JCEKS": true,
}

// knownAlgorithmStrings is the vocabulary of modeled string arguments:
// digest names, cipher algorithms and transformations, PRNG algorithms,
// MAC algorithms, TLS protocols, keystore types, and key-generation
// algorithms. rulelint's satisfiability pass uses it to flag prefix tests
// that cannot match any string the model knows about.
var knownAlgorithmStrings = []string{
	// Digests.
	"MD2", "MD4", "MD5", "SHA", "SHA-1", "SHA-224", "SHA-256", "SHA-384",
	"SHA-512", "SHA1",
	// Cipher algorithms / transformations.
	"AES", "AES/CBC/PKCS5Padding", "AES/CBC/NoPadding", "AES/GCM/NoPadding",
	"AES/ECB/PKCS5Padding", "AES/CTR/NoPadding", "DES", "DES/CBC/PKCS5Padding",
	"DESede", "DESede/CBC/PKCS5Padding", "Blowfish", "RC2", "RC4", "ARCFOUR",
	"RSA", "RSA/ECB/PKCS1Padding", "RSA/ECB/OAEPWithSHA-256AndMGF1Padding",
	"EC", "DSA", "PBKDF2WithHmacSHA1", "PBKDF2WithHmacSHA256",
	// PRNG.
	"SHA1PRNG", "NativePRNG", "DRBG",
	// MAC.
	"HmacMD5", "HmacSHA1", "HmacSHA256", "HmacSHA512",
	// TLS protocols.
	"SSL", "SSLv2", "SSLv3", "TLS", "TLSv1", "TLSv1.1", "TLSv1.2", "TLSv1.3",
	// Keystore types.
	"JKS", "JCEKS", "PKCS12", "BKS", "AndroidKeyStore",
	// Providers.
	"BC", "SunJCE",
}

// SomeKnownStringHasPrefix reports whether any modeled algorithm string
// matches the prefix (after the DSL's normalization: case-insensitive,
// dashes removed). A startsWith constraint whose prefix fails this test
// can never hold on a modeled constant.
func SomeKnownStringHasPrefix(prefix string) bool {
	n := normAlg(prefix)
	for _, s := range knownAlgorithmStrings {
		if strings.HasPrefix(normAlg(s), n) {
			return true
		}
	}
	return false
}

// IsKnownAlgorithmString reports whether the literal names a modeled
// algorithm/transformation/protocol string, under DSL normalization.
func IsKnownAlgorithmString(lit string) bool {
	n := normAlg(lit)
	for _, s := range knownAlgorithmStrings {
		if normAlg(s) == n {
			return true
		}
	}
	return false
}

// normAlg mirrors the rule DSL's literal normalization: uppercase with
// dashes removed ("SHA-1" == "sha1").
func normAlg(s string) string {
	return strings.ReplaceAll(strings.ToUpper(s), "-", "")
}

// IsSymbolicIntConstant reports whether the literal names a symbolic API
// int constant (ENCRYPT_MODE, SDK_INT, ...). The abstraction keeps these
// symbolic, so rule equality tests against them on int parameters are
// legitimate even though the literal is not numeric.
func IsSymbolicIntConstant(name string) bool {
	for _, v := range knownIntConstants {
		if v == name {
			return true
		}
	}
	return false
}
