// Package cliutil holds the small helpers shared by the five command-line
// front-ends (diffcode, evalrepro, cryptochecker, corpusgen, diffcoded),
// so flags with cross-tool contracts are registered and validated in
// exactly one place instead of five drifting copies, and usage errors look
// the same from every tool (one line, exit status 2).
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

// WorkersFlag registers the uniform -workers flag on the default flag set:
// same name, default (GOMAXPROCS), and help text in every CLI. Parse the
// flags, then pass the value through MustWorkers.
func WorkersFlag() *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel workers for analysis, clustering, and checking (1 = serial; default GOMAXPROCS)")
}

// DistCacheFlag registers the uniform -dist-cache flag on the default flag
// set. The cache is on by default; output is bit-identical either way (the
// flag exists for benchmarking and as an escape hatch, not a trade-off).
func DistCacheFlag() *bool {
	return flag.Bool("dist-cache", true,
		"memoize clustering distance kernels (results are identical either way; -dist-cache=false recomputes every pair)")
}

// ValidateWorkers checks a -workers value: every worker pool needs at least
// one worker, so N < 1 is a usage error (0 does not mean "auto" at the CLI
// — the auto default is already the flag's default value).
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", n)
	}
	return nil
}

// UsageError reports a command-line usage error the uniform way across
// every CLI: one "tool: message" line on stderr and exit status 2. No flag
// dump — `tool -h` prints the flags; a usage error should say what was
// wrong, not scroll it off screen.
func UsageError(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	osExit(2)
}

// osExit is swapped out by tests that need to observe UsageError.
var osExit = os.Exit

// Standard is the shared cross-tool flag set, registered and validated in
// one place so the tools cannot drift: -workers, -why, and -dist-cache
// with identical names, defaults, and help text everywhere. Tools that
// have no use for one of the flags still accept it (the established
// parity convention — scripts pass a uniform flag set to every tool).
type Standard struct {
	tool      string
	workers   *int
	why       *WhyMode
	distCache *bool
}

// StandardFlags registers the shared flag set for the named tool on the
// default flag set. Call Parse after registering any tool-specific flags.
func StandardFlags(tool string) *Standard {
	return &Standard{
		tool:      tool,
		workers:   WorkersFlag(),
		why:       WhyFlag(),
		distCache: DistCacheFlag(),
	}
}

// Parse parses the command line and validates the shared flags, reporting
// violations through UsageError (single line, exit 2).
func (s *Standard) Parse() {
	flag.Parse()
	if err := ValidateWorkers(*s.workers); err != nil {
		UsageError(s.tool, "%v", err)
	}
}

// Tool returns the tool name the flag set was registered for.
func (s *Standard) Tool() string { return s.tool }

// Workers returns the validated -workers value.
func (s *Standard) Workers() int { return *s.workers }

// Why returns the parsed -why mode.
func (s *Standard) Why() WhyMode { return *s.why }

// DistCache reports whether the memoized distance engine is enabled.
func (s *Standard) DistCache() bool { return *s.distCache }

// WhyMode is the parsed value of the uniform -why flag.
type WhyMode string

// The three -why settings: off (default), text traces, JSON traces.
const (
	WhyOff  WhyMode = ""
	WhyText WhyMode = "text"
	WhyJSON WhyMode = "json"
)

// On reports whether witness traces were requested in any form.
func (m WhyMode) On() bool { return m != WhyOff }

// whyValue adapts WhyMode to the flag package. IsBoolFlag lets the flag
// appear bare (-why, meaning text) or valued (-why=json).
type whyValue struct{ m *WhyMode }

func (w whyValue) String() string {
	if w.m == nil {
		return ""
	}
	return string(*w.m)
}

func (w whyValue) Set(s string) error {
	switch s {
	case "true", "text":
		*w.m = WhyText
	case "false", "":
		*w.m = WhyOff
	case "json":
		*w.m = WhyJSON
	default:
		return fmt.Errorf("must be 'text' or 'json' (got %q)", s)
	}
	return nil
}

func (w whyValue) IsBoolFlag() bool { return true }

// WhyFlag registers the uniform -why flag on the default flag set: bare
// -why prints a witness trace for every violation, -why=json emits the
// traces as JSON. Off by default; with the flag off, tool output is
// byte-identical to a build without witness support.
func WhyFlag() *WhyMode {
	m := WhyOff
	flag.Var(whyValue{&m}, "why", "explain each violation with its witness trace (origin → defs → sink); -why=json for JSON")
	return &m
}
