// Package cliutil holds the small helpers shared by the four command-line
// front-ends (diffcode, evalrepro, cryptochecker, corpusgen), so flags with
// cross-tool contracts are registered and validated in exactly one place
// instead of four drifting copies.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

// WorkersFlag registers the uniform -workers flag on the default flag set:
// same name, default (GOMAXPROCS), and help text in every CLI. Parse the
// flags, then pass the value through MustWorkers.
func WorkersFlag() *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel workers for analysis, clustering, and checking (1 = serial; default GOMAXPROCS)")
}

// DistCacheFlag registers the uniform -dist-cache flag on the default flag
// set. The cache is on by default; output is bit-identical either way (the
// flag exists for benchmarking and as an escape hatch, not a trade-off).
func DistCacheFlag() *bool {
	return flag.Bool("dist-cache", true,
		"memoize clustering distance kernels (results are identical either way; -dist-cache=false recomputes every pair)")
}

// ValidateWorkers checks a -workers value: every worker pool needs at least
// one worker, so N < 1 is a usage error (0 does not mean "auto" at the CLI
// — the auto default is already the flag's default value).
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", n)
	}
	return nil
}

// MustWorkers validates a parsed -workers value for the named tool,
// printing a usage error and exiting with status 2 (the CLIs' usage-error
// convention) when it is invalid. Returns the value unchanged otherwise.
func MustWorkers(tool string, n int) int {
	if err := ValidateWorkers(n); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		flag.Usage()
		os.Exit(2)
	}
	return n
}
