// Package cliutil holds the small helpers shared by the four command-line
// front-ends (diffcode, evalrepro, cryptochecker, corpusgen), so flags with
// cross-tool contracts are registered and validated in exactly one place
// instead of four drifting copies.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

// WorkersFlag registers the uniform -workers flag on the default flag set:
// same name, default (GOMAXPROCS), and help text in every CLI. Parse the
// flags, then pass the value through MustWorkers.
func WorkersFlag() *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel workers for analysis, clustering, and checking (1 = serial; default GOMAXPROCS)")
}

// DistCacheFlag registers the uniform -dist-cache flag on the default flag
// set. The cache is on by default; output is bit-identical either way (the
// flag exists for benchmarking and as an escape hatch, not a trade-off).
func DistCacheFlag() *bool {
	return flag.Bool("dist-cache", true,
		"memoize clustering distance kernels (results are identical either way; -dist-cache=false recomputes every pair)")
}

// ValidateWorkers checks a -workers value: every worker pool needs at least
// one worker, so N < 1 is a usage error (0 does not mean "auto" at the CLI
// — the auto default is already the flag's default value).
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", n)
	}
	return nil
}

// MustWorkers validates a parsed -workers value for the named tool,
// printing a usage error and exiting with status 2 (the CLIs' usage-error
// convention) when it is invalid. Returns the value unchanged otherwise.
func MustWorkers(tool string, n int) int {
	if err := ValidateWorkers(n); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		flag.Usage()
		os.Exit(2)
	}
	return n
}

// WhyMode is the parsed value of the uniform -why flag.
type WhyMode string

// The three -why settings: off (default), text traces, JSON traces.
const (
	WhyOff  WhyMode = ""
	WhyText WhyMode = "text"
	WhyJSON WhyMode = "json"
)

// On reports whether witness traces were requested in any form.
func (m WhyMode) On() bool { return m != WhyOff }

// whyValue adapts WhyMode to the flag package. IsBoolFlag lets the flag
// appear bare (-why, meaning text) or valued (-why=json).
type whyValue struct{ m *WhyMode }

func (w whyValue) String() string {
	if w.m == nil {
		return ""
	}
	return string(*w.m)
}

func (w whyValue) Set(s string) error {
	switch s {
	case "true", "text":
		*w.m = WhyText
	case "false", "":
		*w.m = WhyOff
	case "json":
		*w.m = WhyJSON
	default:
		return fmt.Errorf("must be 'text' or 'json' (got %q)", s)
	}
	return nil
}

func (w whyValue) IsBoolFlag() bool { return true }

// WhyFlag registers the uniform -why flag on the default flag set: bare
// -why prints a witness trace for every violation, -why=json emits the
// traces as JSON. Off by default; with the flag off, tool output is
// byte-identical to a build without witness support.
func WhyFlag() *WhyMode {
	m := WhyOff
	flag.Var(whyValue{&m}, "why", "explain each violation with its witness trace (origin → defs → sink); -why=json for JSON")
	return &m
}
