// Package cliutil holds the small helpers shared by the five command-line
// front-ends (diffcode, evalrepro, cryptochecker, corpusgen, diffcoded),
// so flags with cross-tool contracts are registered and validated in
// exactly one place instead of five drifting copies, and usage errors look
// the same from every tool (one line, exit status 2).
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/trace"
)

// WorkersFlag registers the uniform -workers flag on the default flag set:
// same name, default (GOMAXPROCS), and help text in every CLI. Parse the
// flags, then pass the value through MustWorkers.
func WorkersFlag() *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel workers for analysis, clustering, and checking (1 = serial; default GOMAXPROCS)")
}

// DistCacheFlag registers the uniform -dist-cache flag on the default flag
// set. The cache is on by default; output is bit-identical either way (the
// flag exists for benchmarking and as an escape hatch, not a trade-off).
func DistCacheFlag() *bool {
	return flag.Bool("dist-cache", true,
		"memoize clustering distance kernels (results are identical either way; -dist-cache=false recomputes every pair)")
}

// CacheDirFlag registers the uniform -cache-dir flag on the default flag
// set: the root directory of the persistent artifact store behind
// incremental runs. Empty (the default) keeps artifacts in memory only —
// within-run reuse without leaving anything on disk.
func CacheDirFlag() *string {
	return flag.String("cache-dir", "",
		"persist content-addressed artifacts (parsed ASTs, analysis results, check outcomes) under this directory; warm re-runs recompute only what changed (empty = in-memory only)")
}

// MaxInlineFlag registers the uniform -max-inline flag on the default flag
// set: the call-inlining depth bound of the abstract interpreter (the
// paper's §5.1 bound, default 4). With -summaries on the bound is lifted —
// summary-based analysis reaches past it via cycle detection — so the flag
// mainly shapes -summaries=false runs.
func MaxInlineFlag() *int {
	return flag.Int("max-inline", 4,
		"call-inlining depth bound of the abstract interpreter (with -summaries on, reach extends past it; 0 applies the default)")
}

// SummariesFlag registers the uniform -summaries flag on the default flag
// set. On by default: callees are memoized as per-method summaries and
// interprocedural reach is bounded by cycle detection instead of
// -max-inline. -summaries=false restores the exact re-inlining interpreter.
func SummariesFlag() *bool {
	return flag.Bool("summaries", true,
		"memoize per-method summaries (interpret each helper once per distinct abstract input, reach past -max-inline); -summaries=false re-inlines every call")
}

// ValidateWorkers checks a -workers value: every worker pool needs at least
// one worker, so N < 1 is a usage error (0 does not mean "auto" at the CLI
// — the auto default is already the flag's default value).
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", n)
	}
	return nil
}

// ValidateMaxInline checks a -max-inline value: negative depths are a usage
// error (0 means "use the analyzer default", mirroring the library zero
// value; the -workers pattern of validating at parse time applies).
func ValidateMaxInline(n int) error {
	if n < 0 {
		return fmt.Errorf("-max-inline must be non-negative (got %d)", n)
	}
	return nil
}

// UsageError reports a command-line usage error the uniform way across
// every CLI: one "tool: message" line on stderr and exit status 2. No flag
// dump — `tool -h` prints the flags; a usage error should say what was
// wrong, not scroll it off screen.
func UsageError(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	osExit(2)
}

// osExit is swapped out by tests that need to observe UsageError.
var osExit = os.Exit

// Standard is the shared cross-tool flag set, registered and validated in
// one place so the tools cannot drift: -workers, -why, and -dist-cache
// with identical names, defaults, and help text everywhere. Tools that
// have no use for one of the flags still accept it (the established
// parity convention — scripts pass a uniform flag set to every tool).
type Standard struct {
	tool      string
	workers   *int
	why       *WhyMode
	distCache *bool
	trace     *TraceMode
	cacheDir  *string
	maxInline *int
	summaries *bool
	rulePacks *[]string
	rulesLax  *bool
}

// StandardFlags registers the shared flag set for the named tool on the
// default flag set. Call Parse after registering any tool-specific flags.
func StandardFlags(tool string) *Standard {
	return &Standard{
		tool:      tool,
		workers:   WorkersFlag(),
		why:       WhyFlag(),
		distCache: DistCacheFlag(),
		trace:     TraceFlag(),
		cacheDir:  CacheDirFlag(),
		maxInline: MaxInlineFlag(),
		summaries: SummariesFlag(),
		rulePacks: RulePacksFlag(),
		rulesLax:  RulesLaxFlag(),
	}
}

// Parse parses the command line and validates the shared flags, reporting
// violations through UsageError (single line, exit 2).
func (s *Standard) Parse() {
	flag.Parse()
	if err := ValidateWorkers(*s.workers); err != nil {
		UsageError(s.tool, "%v", err)
	}
	if err := ValidateMaxInline(*s.maxInline); err != nil {
		UsageError(s.tool, "%v", err)
	}
}

// Tool returns the tool name the flag set was registered for.
func (s *Standard) Tool() string { return s.tool }

// Workers returns the validated -workers value.
func (s *Standard) Workers() int { return *s.workers }

// Why returns the parsed -why mode.
func (s *Standard) Why() WhyMode { return *s.why }

// DistCache reports whether the memoized distance engine is enabled.
func (s *Standard) DistCache() bool { return *s.distCache }

// Trace returns the parsed -trace mode.
func (s *Standard) Trace() TraceMode { return *s.trace }

// CacheDir returns the -cache-dir value ("" = in-memory artifacts only).
func (s *Standard) CacheDir() string { return *s.cacheDir }

// MaxInline returns the validated -max-inline value (0 = analyzer default).
func (s *Standard) MaxInline() int { return *s.maxInline }

// Summaries reports whether memoized per-method summaries are enabled.
func (s *Standard) Summaries() bool { return *s.summaries }

// Artifacts builds the tool's artifact store from -cache-dir: disk-backed
// when a directory was given, in-memory otherwise. Every CLI run gets a
// store — within-run artifact reuse (duplicate commits, repeated snippets)
// costs nothing and changes no output; the flag only decides persistence.
// Telemetry lands in reg under artifact.*.
func (s *Standard) Artifacts(reg *obs.Registry) *artifact.Store {
	return artifact.New(artifact.Config{Dir: *s.cacheDir, Metrics: reg})
}

// WhyMode is the parsed value of the uniform -why flag.
type WhyMode string

// The three -why settings: off (default), text traces, JSON traces.
const (
	WhyOff  WhyMode = ""
	WhyText WhyMode = "text"
	WhyJSON WhyMode = "json"
)

// On reports whether witness traces were requested in any form.
func (m WhyMode) On() bool { return m != WhyOff }

// whyValue adapts WhyMode to the flag package. IsBoolFlag lets the flag
// appear bare (-why, meaning text) or valued (-why=json).
type whyValue struct{ m *WhyMode }

func (w whyValue) String() string {
	if w.m == nil {
		return ""
	}
	return string(*w.m)
}

func (w whyValue) Set(s string) error {
	switch s {
	case "true", "text":
		*w.m = WhyText
	case "false", "":
		*w.m = WhyOff
	case "json":
		*w.m = WhyJSON
	default:
		return fmt.Errorf("must be 'text' or 'json' (got %q)", s)
	}
	return nil
}

func (w whyValue) IsBoolFlag() bool { return true }

// WhyFlag registers the uniform -why flag on the default flag set: bare
// -why prints a witness trace for every violation, -why=json emits the
// traces as JSON. Off by default; with the flag off, tool output is
// byte-identical to a build without witness support.
func WhyFlag() *WhyMode {
	m := WhyOff
	flag.Var(whyValue{&m}, "why", "explain each violation with its witness trace (origin → defs → sink); -why=json for JSON")
	return &m
}

// TraceMode is the parsed value of the uniform -trace flag.
type TraceMode string

// The three -trace settings: off (default), text tree, JSON tree.
const (
	TraceOff  TraceMode = ""
	TraceText TraceMode = "text"
	TraceJSON TraceMode = "json"
)

// On reports whether request tracing was requested in any form.
func (m TraceMode) On() bool { return m != TraceOff }

// traceValue adapts TraceMode to the flag package, mirroring whyValue:
// IsBoolFlag lets the flag appear bare (-trace, meaning text) or valued
// (-trace=json).
type traceValue struct{ m *TraceMode }

func (t traceValue) String() string {
	if t.m == nil {
		return ""
	}
	return string(*t.m)
}

func (t traceValue) Set(s string) error {
	switch s {
	case "true", "text":
		*t.m = TraceText
	case "false", "":
		*t.m = TraceOff
	case "json":
		*t.m = TraceJSON
	default:
		return fmt.Errorf("must be 'text' or 'json' (got %q)", s)
	}
	return nil
}

func (t traceValue) IsBoolFlag() bool { return true }

// TraceFlag registers the uniform -trace flag on the default flag set: bare
// -trace traces the run with hierarchical spans and dumps the trace tree at
// exit (batch tools: text to stderr; diffcoded: retained traces at
// shutdown), -trace=json emits JSON. Off by default; with the flag off,
// tool output is byte-identical to an untraced build.
func TraceFlag() *TraceMode {
	m := TraceOff
	flag.Var(traceValue{&m}, "trace", "trace the run with hierarchical spans and dump the trace tree at exit; -trace=json for JSON")
	return &m
}

// Begin opens the run's root span when tracing is on, returning a context
// to thread through the pipeline's Ctx entry points and the root span to
// Dump at exit. Off → the background context and a nil (inert) span, so
// call sites need no mode check.
func (m TraceMode) Begin(tool string) (context.Context, *trace.Span) {
	if !m.On() {
		return context.Background(), nil
	}
	root := trace.New().Root(tool)
	return trace.NewContext(context.Background(), root), root
}

// Dump ends the root span and writes the run's trace tree to w. The CLIs
// pass stderr, keeping stdout byte-identical to an untraced run. No-op on a
// nil span (tracing off).
func (m TraceMode) Dump(w io.Writer, root *trace.Span) {
	if root == nil {
		return
	}
	root.End()
	d := trace.Snapshot(root)
	if m == TraceJSON {
		fmt.Fprint(w, d.JSON())
		return
	}
	fmt.Fprint(w, d.Render())
}
