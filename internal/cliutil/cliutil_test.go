package cliutil

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) = nil, want error", n)
		}
	}
}

// captureUsageError runs fn with the exit hook intercepted and stderr
// captured, returning the exit status (-1 if never called) and the message.
func captureUsageError(t *testing.T, fn func()) (code int, msg string) {
	t.Helper()
	code = -1
	osExit = func(c int) { code = c; panic("exit") }
	defer func() { osExit = os.Exit }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldErr := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = oldErr }()
	func() {
		defer func() { recover() }() // the exit hook panics to stop fn
		fn()
	}()
	w.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return code, sb.String()
}

func TestUsageErrorSingleLineExit2(t *testing.T) {
	code, msg := captureUsageError(t, func() {
		UsageError("sometool", "unknown rule %q", "R99")
	})
	if code != 2 {
		t.Errorf("exit status = %d, want 2", code)
	}
	want := "sometool: unknown rule \"R99\"\n"
	if msg != want {
		t.Errorf("stderr = %q, want %q (single line, no flag dump)", msg, want)
	}
}

func TestStandardFlagsParseAndValidate(t *testing.T) {
	oldCmd := flag.CommandLine
	oldArgs := os.Args
	defer func() { flag.CommandLine = oldCmd; os.Args = oldArgs }()

	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	std := StandardFlags("test")
	os.Args = []string{"test", "-workers", "3", "-why=json", "-dist-cache=false"}
	std.Parse()
	if std.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", std.Workers())
	}
	if std.Why() != WhyJSON {
		t.Errorf("Why() = %q, want %q", std.Why(), WhyJSON)
	}
	if std.DistCache() {
		t.Error("DistCache() = true, want false")
	}
	if std.Tool() != "test" {
		t.Errorf("Tool() = %q, want %q", std.Tool(), "test")
	}
}

func TestTraceFlagModes(t *testing.T) {
	cases := []struct {
		args []string
		want TraceMode
	}{
		{[]string{"test"}, TraceOff},
		{[]string{"test", "-trace"}, TraceText},
		{[]string{"test", "-trace=text"}, TraceText},
		{[]string{"test", "-trace=json"}, TraceJSON},
		{[]string{"test", "-trace=false"}, TraceOff},
	}
	oldCmd := flag.CommandLine
	oldArgs := os.Args
	defer func() { flag.CommandLine = oldCmd; os.Args = oldArgs }()
	for _, c := range cases {
		flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
		std := StandardFlags("test")
		os.Args = c.args
		std.Parse()
		if std.Trace() != c.want {
			t.Errorf("args %v: Trace() = %q, want %q", c.args[1:], std.Trace(), c.want)
		}
		if std.Trace().On() != (c.want != TraceOff) {
			t.Errorf("args %v: On() = %t", c.args[1:], std.Trace().On())
		}
	}
}

func TestTraceFlagRejectsUnknownMode(t *testing.T) {
	var m TraceMode
	if err := (traceValue{&m}).Set("waterfall"); err == nil {
		t.Error("Set(\"waterfall\") = nil, want error")
	}
}

func TestTraceBeginAndDump(t *testing.T) {
	// Off: an inert span and a clean context, and Dump writes nothing.
	ctx, root := TraceOff.Begin("tool")
	if root != nil {
		t.Fatalf("TraceOff.Begin root = %v, want nil", root)
	}
	if trace.FromContext(ctx) != nil {
		t.Error("TraceOff.Begin context carries a span")
	}
	var sb strings.Builder
	TraceOff.Dump(&sb, root)
	if sb.Len() != 0 {
		t.Errorf("TraceOff.Dump wrote %q, want nothing", sb.String())
	}

	// Text: the dump is the indented trace tree.
	ctx, root = TraceText.Begin("tool")
	if trace.FromContext(ctx) != root || root == nil {
		t.Fatal("TraceText.Begin context does not carry the root span")
	}
	root.Child("stage").End()
	TraceText.Dump(&sb, root)
	out := sb.String()
	if !strings.Contains(out, "tool ") || !strings.Contains(out, "\n  stage ") {
		t.Errorf("text dump missing tree:\n%s", out)
	}

	// JSON: the dump parses and round-trips the span names.
	_, root = TraceJSON.Begin("tool")
	root.Child("stage").End()
	sb.Reset()
	TraceJSON.Dump(&sb, root)
	var d trace.SpanData
	if err := json.Unmarshal([]byte(sb.String()), &d); err != nil {
		t.Fatalf("JSON dump does not parse: %v\n%s", err, sb.String())
	}
	if d.Name != "tool" || len(d.Children) != 1 || d.Children[0].Name != "stage" {
		t.Errorf("JSON dump tree = %+v", d)
	}
}

func TestStandardFlagsRejectBadWorkers(t *testing.T) {
	oldCmd := flag.CommandLine
	oldArgs := os.Args
	defer func() { flag.CommandLine = oldCmd; os.Args = oldArgs }()

	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	std := StandardFlags("badtool")
	os.Args = []string{"badtool", "-workers", "0"}
	code, msg := captureUsageError(t, std.Parse)
	if code != 2 {
		t.Errorf("exit status = %d, want 2", code)
	}
	if !strings.HasPrefix(msg, "badtool: -workers must be at least 1") {
		t.Errorf("stderr = %q, want the uniform single-line -workers message", msg)
	}
	if strings.Count(strings.TrimRight(msg, "\n"), "\n") != 0 {
		t.Errorf("usage error spans multiple lines:\n%s", msg)
	}
}

func TestValidateMaxInline(t *testing.T) {
	for _, n := range []int{0, 1, 4, 64} {
		if err := ValidateMaxInline(n); err != nil {
			t.Errorf("ValidateMaxInline(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{-1, -8} {
		if err := ValidateMaxInline(n); err == nil {
			t.Errorf("ValidateMaxInline(%d) = nil, want error", n)
		}
	}
}

func TestStandardFlagsSummariesAndMaxInline(t *testing.T) {
	oldCmd := flag.CommandLine
	oldArgs := os.Args
	defer func() { flag.CommandLine = oldCmd; os.Args = oldArgs }()

	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	std := StandardFlags("test")
	os.Args = []string{"test"}
	std.Parse()
	if !std.Summaries() {
		t.Error("Summaries() = false by default, want true")
	}
	if std.MaxInline() != 4 {
		t.Errorf("MaxInline() = %d by default, want 4", std.MaxInline())
	}

	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	std = StandardFlags("test")
	os.Args = []string{"test", "-summaries=false", "-max-inline", "8"}
	std.Parse()
	if std.Summaries() {
		t.Error("Summaries() = true with -summaries=false")
	}
	if std.MaxInline() != 8 {
		t.Errorf("MaxInline() = %d, want 8", std.MaxInline())
	}
}

func TestStandardFlagsMaxInlineNegativeUsageError(t *testing.T) {
	oldCmd := flag.CommandLine
	oldArgs := os.Args
	defer func() { flag.CommandLine = oldCmd; os.Args = oldArgs }()
	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	std := StandardFlags("test")
	os.Args = []string{"test", "-max-inline=-2"}
	code, msg := captureUsageError(t, std.Parse)
	if code != 2 {
		t.Errorf("exit status = %d, want 2", code)
	}
	if !strings.Contains(msg, "max-inline") {
		t.Errorf("stderr %q does not name -max-inline", msg)
	}
}
