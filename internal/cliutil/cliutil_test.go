package cliutil

import (
	"flag"
	"os"
	"runtime"
	"strings"
	"testing"
)

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) = nil, want error", n)
		}
	}
}

// captureUsageError runs fn with the exit hook intercepted and stderr
// captured, returning the exit status (-1 if never called) and the message.
func captureUsageError(t *testing.T, fn func()) (code int, msg string) {
	t.Helper()
	code = -1
	osExit = func(c int) { code = c; panic("exit") }
	defer func() { osExit = os.Exit }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldErr := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = oldErr }()
	func() {
		defer func() { recover() }() // the exit hook panics to stop fn
		fn()
	}()
	w.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return code, sb.String()
}

func TestUsageErrorSingleLineExit2(t *testing.T) {
	code, msg := captureUsageError(t, func() {
		UsageError("sometool", "unknown rule %q", "R99")
	})
	if code != 2 {
		t.Errorf("exit status = %d, want 2", code)
	}
	want := "sometool: unknown rule \"R99\"\n"
	if msg != want {
		t.Errorf("stderr = %q, want %q (single line, no flag dump)", msg, want)
	}
}

func TestStandardFlagsParseAndValidate(t *testing.T) {
	oldCmd := flag.CommandLine
	oldArgs := os.Args
	defer func() { flag.CommandLine = oldCmd; os.Args = oldArgs }()

	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	std := StandardFlags("test")
	os.Args = []string{"test", "-workers", "3", "-why=json", "-dist-cache=false"}
	std.Parse()
	if std.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", std.Workers())
	}
	if std.Why() != WhyJSON {
		t.Errorf("Why() = %q, want %q", std.Why(), WhyJSON)
	}
	if std.DistCache() {
		t.Error("DistCache() = true, want false")
	}
	if std.Tool() != "test" {
		t.Errorf("Tool() = %q, want %q", std.Tool(), "test")
	}
}

func TestStandardFlagsRejectBadWorkers(t *testing.T) {
	oldCmd := flag.CommandLine
	oldArgs := os.Args
	defer func() { flag.CommandLine = oldCmd; os.Args = oldArgs }()

	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	std := StandardFlags("badtool")
	os.Args = []string{"badtool", "-workers", "0"}
	code, msg := captureUsageError(t, std.Parse)
	if code != 2 {
		t.Errorf("exit status = %d, want 2", code)
	}
	if !strings.HasPrefix(msg, "badtool: -workers must be at least 1") {
		t.Errorf("stderr = %q, want the uniform single-line -workers message", msg)
	}
	if strings.Count(strings.TrimRight(msg, "\n"), "\n") != 0 {
		t.Errorf("usage error spans multiple lines:\n%s", msg)
	}
}
