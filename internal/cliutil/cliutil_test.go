package cliutil

import (
	"runtime"
	"testing"
)

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -8} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) = nil, want error", n)
		}
	}
}

func TestMustWorkersPassesValidValue(t *testing.T) {
	if got := MustWorkers("test", 3); got != 3 {
		t.Errorf("MustWorkers(3) = %d, want 3", got)
	}
}
