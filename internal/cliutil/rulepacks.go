package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/rulelint"
	"repro/internal/rules"
)

// The -rules / -rules-lax pair is the uniform rule-pack surface of every
// CLI: each -rules names a pack file (repeatable), and loading is a
// mandatory gate — packs are compiled and linted against the built-in
// rules, and error-level findings abort the tool with exit status 2
// before any analysis runs. -rules-lax downgrades the gate: findings
// still print, but the cleanly compiled rules load (built-ins win ID
// collisions deterministically). Without -rules nothing changes: the
// active set stays the built-in default and every output byte matches a
// build without pack support.

// ruleListValue adapts a repeatable -rules flag to the flag package.
type ruleListValue struct{ paths *[]string }

func (r ruleListValue) String() string {
	if r.paths == nil {
		return ""
	}
	return strings.Join(*r.paths, ",")
}

func (r ruleListValue) Set(s string) error {
	if s == "" {
		return fmt.Errorf("empty rule pack path")
	}
	*r.paths = append(*r.paths, s)
	return nil
}

// RulePacksFlag registers the uniform repeatable -rules flag on the
// default flag set.
func RulePacksFlag() *[]string {
	var paths []string
	flag.Var(ruleListValue{&paths}, "rules",
		"load a rule pack file ('id | description | formula' lines; repeatable); packs are linted and error findings abort with exit 2")
	return &paths
}

// RulesLaxFlag registers the uniform -rules-lax flag on the default flag
// set.
func RulesLaxFlag() *bool {
	return flag.Bool("rules-lax", false,
		"load rule packs despite error-level lint findings (broken rules are skipped; built-ins win ID collisions)")
}

// RulePacks returns the -rules pack paths in flag order.
func (s *Standard) RulePacks() []string { return *s.rulePacks }

// RulesLax reports whether -rules-lax downgraded the lint gate.
func (s *Standard) RulesLax() bool { return *s.rulesLax }

// ActiveRules runs the rule-pack gate for the tool: load every -rules
// pack, lint the lot against the built-in rules, fold the rulelint.* and
// rulepack.* telemetry into reg, and return the merged active rule set.
// Findings print to stderr; error-level findings are fatal (exit 2)
// unless -rules-lax. With no -rules flags the return is nil — callers
// keep their default rule set and their output stays byte-identical.
func (s *Standard) ActiveRules(reg *obs.Registry) []*rules.Rule {
	paths := s.RulePacks()
	if len(paths) == 0 {
		return nil
	}
	res, err := rulelint.Load(paths)
	if err != nil {
		UsageError(s.tool, "loading rule packs: %v", err)
		return nil
	}
	res.Observe(reg)
	if res.Report.HasFindings() {
		fmt.Fprint(os.Stderr, res.Report.Render())
	}
	if res.Report.HasErrors() && !s.RulesLax() {
		fmt.Fprintf(os.Stderr, "%s: rule pack validation failed (%d error(s)); fix the pack or pass -rules-lax to load what compiles\n",
			s.tool, res.Report.Errors())
		osExit(2)
		return nil
	}
	return res.Active
}
