package textdist

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/usage"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"kitten", "sitting", 3},
		{"AES", "AES/CBC", 4},
		{"", "xyz", 3},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein([]rune(c.a), []rune(c.b)); got != c.want {
			t.Errorf("lev(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Levenshtein is a metric (identity, symmetry, triangle).
func TestQuickLevenshteinMetric(t *testing.T) {
	trim := func(s string) []rune {
		r := []rune(s)
		if len(r) > 12 {
			r = r[:12]
		}
		return r
	}
	sym := func(a, b string) bool {
		x, y := trim(a), trim(b)
		return Levenshtein(x, y) == Levenshtein(y, x)
	}
	ident := func(a string) bool { return Levenshtein(trim(a), trim(a)) == 0 }
	tri := func(a, b, c string) bool {
		x, y, z := trim(a), trim(b), trim(c)
		return Levenshtein(x, z) <= Levenshtein(x, y)+Levenshtein(y, z)
	}
	bound := func(a, b string) bool {
		x, y := trim(a), trim(b)
		d := Levenshtein(x, y)
		max := len(x)
		if len(y) > max {
			max = len(y)
		}
		return d <= max
	}
	for name, f := range map[string]any{
		"symmetric": sym, "identity": ident, "triangle": tri, "bounded": bound,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLabelUnits(t *testing.T) {
	// Method names are single units: any substitution costs 1.
	if got := LabelDist("getInstance", "init"); got != 1 {
		t.Errorf("method substitution = %d, want 1", got)
	}
	// Identical labels cost 0.
	if got := LabelDist("init", "init"); got != 0 {
		t.Errorf("identical = %d", got)
	}
	// String payloads at the same argument position compare per character.
	if got := LabelDist(`arg1:"AES"`, `arg1:"AES/CBC"`); got != 4 {
		t.Errorf("string payload dist = %d, want 4", got)
	}
	// Different argument positions are whole-label substitutions.
	if got := LabelDist(`arg1:"AES"`, `arg2:"AES"`); got != 4 {
		t.Errorf("cross-position dist = %d, want 4 (len AES + prefix)", got)
	}
}

func TestLSRRange(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"init", "init", 1},
		{"getInstance", "init", 0},
		{`arg1:"AES"`, `arg1:"AES"`, 1},
	}
	for _, c := range cases {
		if got := LSR(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LSR(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Similar strings score between 0 and 1.
	got := LSR(`arg1:"AES/ECB"`, `arg1:"AES/CBC"`)
	if got <= 0 || got >= 1 {
		t.Errorf("LSR of similar strings = %v, want in (0,1)", got)
	}
}

func TestCommonPrefix(t *testing.T) {
	cases := []struct {
		a, b usage.Path
		want int
	}{
		{usage.Path{"a", "b", "c"}, usage.Path{"a", "b", "d"}, 2},
		{usage.Path{"a"}, usage.Path{"b"}, 0},
		{usage.Path{"a", "b"}, usage.Path{"a", "b"}, 2},
		{usage.Path{"a", "b"}, usage.Path{"a", "b", "c"}, 2},
		{nil, usage.Path{"a"}, 0},
	}
	for _, c := range cases {
		if got := CommonPrefix(c.a, c.b); got != c.want {
			t.Errorf("CommonPrefix(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPathDist(t *testing.T) {
	p1 := usage.Path{"Cipher", "getInstance", `arg1:"AES/ECB"`}
	p2 := usage.Path{"Cipher", "getInstance", `arg1:"AES/GCM"`}
	p3 := usage.Path{"Cipher", "init", "arg1:ENCRYPT_MODE"}
	if d := PathDist(p1, p1); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	d12 := PathDist(p1, p2)
	d13 := PathDist(p1, p3)
	if d12 >= d13 {
		t.Errorf("mode tweak (%v) should be closer than different method (%v)", d12, d13)
	}
	if d12 <= 0 || d12 >= 1 || d13 <= 0 || d13 > 1 {
		t.Errorf("distances out of range: %v %v", d12, d13)
	}
	// Strict prefix: j = 2, no mismatch element on the short side.
	p4 := usage.Path{"Cipher", "getInstance"}
	want := 1 - 2.0/3.0
	if d := PathDist(p1, p4); math.Abs(d-want) > 1e-12 {
		t.Errorf("prefix distance = %v, want %v", d, want)
	}
}

// Property: PathDist is symmetric, in [0,1], and zero iff equal.
func TestQuickPathDistProperties(t *testing.T) {
	labels := []string{"Cipher", "getInstance", "init", `arg1:"AES"`,
		`arg1:"DES"`, "arg1:ENCRYPT_MODE", "arg2:Secret", "<init>"}
	gen := func(idx []uint8) usage.Path {
		var p usage.Path
		for _, i := range idx {
			p = append(p, labels[int(i)%len(labels)])
			if len(p) >= 5 {
				break
			}
		}
		return p
	}
	f := func(a, b []uint8) bool {
		p, q := gen(a), gen(b)
		if len(p) == 0 || len(q) == 0 {
			return true
		}
		d1, d2 := PathDist(p, q), PathDist(q, p)
		if math.Abs(d1-d2) > 1e-12 {
			return false
		}
		if d1 < 0 || d1 > 1 {
			return false
		}
		if p.Equal(q) != (d1 == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPathsDist(t *testing.T) {
	a := []usage.Path{{"Cipher", "getInstance", `arg1:"AES"`}}
	b := []usage.Path{{"Cipher", "getInstance", `arg1:"AES"`}}
	if d := PathsDist(a, b); d != 0 {
		t.Errorf("identical sets: %v", d)
	}
	// One unmatched path costs 1.
	c := append(b, usage.Path{"Cipher", "init"})
	if d := PathsDist(a, c); math.Abs(d-1) > 1e-12 {
		t.Errorf("one extra path: %v, want 1", d)
	}
	if d := PathsDist(nil, nil); d != 0 {
		t.Errorf("empty sets: %v", d)
	}
	if d := PathsDist(nil, a); d != 1 {
		t.Errorf("one-sided: %v", d)
	}
}

func TestPathsDistPicksBestMatching(t *testing.T) {
	// Crossed sets: the greedy diagonal would cost more than the optimal
	// permutation.
	x1 := usage.Path{"Cipher", "getInstance", `arg1:"AES/ECB"`}
	x2 := usage.Path{"Cipher", "init", "arg1:ENCRYPT_MODE"}
	y1 := usage.Path{"Cipher", "init", "arg1:DECRYPT_MODE"}
	y2 := usage.Path{"Cipher", "getInstance", `arg1:"AES/CBC"`}
	got := PathsDist([]usage.Path{x1, x2}, []usage.Path{y1, y2})
	direct := PathDist(x1, y2) + PathDist(x2, y1)
	if math.Abs(got-direct) > 1e-12 {
		t.Errorf("matching not optimal: got %v, want %v", got, direct)
	}
}

func TestUsageDist(t *testing.T) {
	rem := []usage.Path{{"Cipher", "getInstance", `arg1:"AES"`}}
	add := []usage.Path{{"Cipher", "getInstance", `arg1:"AES/GCM/NoPadding"`}}
	if d := UsageDist(rem, add, rem, add); d != 0 {
		t.Errorf("identical changes: %v", d)
	}
	d := UsageDist(rem, add, rem, nil)
	// removed identical (0), added vs empty (1) → (0+1)/2.
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("half-different changes: %v, want 0.5", d)
	}
}

func BenchmarkPathsDist(b *testing.B) {
	mk := func(s string) usage.Path {
		return usage.Path{"Cipher", "getInstance", `arg1:"` + s + `"`}
	}
	f1 := []usage.Path{mk("AES/ECB"), mk("DES"), mk("AES/CBC/PKCS5Padding")}
	f2 := []usage.Path{mk("AES/GCM/NoPadding"), mk("AES"), mk("RSA")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PathsDist(f1, f2)
	}
}

// ---------------------------------------------------------------------------
// Differential properties: the banded kernel vs the naive reference DP.
// ---------------------------------------------------------------------------

// TestDifferentialLevenshteinBandedVsNaive quick-checks that the doubling-
// band kernel returns exactly the naive full-DP distance on arbitrary rune
// slices (including non-ASCII input from quick's string generator).
func TestDifferentialLevenshteinBandedVsNaive(t *testing.T) {
	trim := func(s string) []rune {
		r := []rune(s)
		if len(r) > 24 {
			r = r[:24]
		}
		return r
	}
	f := func(a, b string) bool {
		x, y := trim(a), trim(b)
		return Levenshtein(x, y) == levenshteinNaive(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Adversarial shapes for the band: shared affixes, big length skews,
	// and strings that differ only in the middle.
	cases := [][2]string{
		{"", ""}, {"a", ""}, {"", "abcdef"},
		{"abcdef", "abcdef"},
		{"abcdef", "abXdef"},
		{"aaaaaaaaaa", "a"},
		{"prefixMIDDLEsuffix", "prefixMIDDLXsuffix"},
		{"prefix_suffix", "prefixsuffix"},
		{"xyxyxyxy", "yxyxyxyx"},
		{"AES/CBC/PKCS5Padding", "AES/GCM/NoPadding"},
		{"日本語テキスト", "日本語のテキスト"},
	}
	for _, c := range cases {
		x, y := []rune(c[0]), []rune(c[1])
		if got, want := Levenshtein(x, y), levenshteinNaive(x, y); got != want {
			t.Errorf("lev(%q, %q) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

// TestDifferentialLabelDist quick-checks LabelDist (banded) against the
// naive reference over the label shapes the pipeline produces, plus raw
// random strings (malformed labels must agree too).
func TestDifferentialLabelDist(t *testing.T) {
	algs := []string{"", "AES", "DES", "AES/ECB", "AES/CBC/PKCS5Padding",
		"AES/GCM/NoPadding", "SHA1PRNG", "MD5", "日本語"}
	mk := func(pos uint8, alg uint8) string {
		return fmt.Sprintf("arg%d:%q", int(pos)%3+1, algs[int(alg)%len(algs)])
	}
	structured := func(p1, a1, p2, a2 uint8) bool {
		a, b := mk(p1, a1), mk(p2, a2)
		return LabelDist(a, b) == labelDistNaive(a, b)
	}
	raw := func(a, b string) bool {
		return LabelDist(a, b) == labelDistNaive(a, b)
	}
	for name, f := range map[string]any{"structured": structured, "raw": raw} {
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestLabelPayloadDegenerate pins the malformed-label guard: a label ending
// exactly at the opening `:"` has no payload and must be treated as a
// single-unit label, not sliced out of bounds.
func TestLabelPayloadDegenerate(t *testing.T) {
	for _, l := range []string{`x:"`, `:"`, `arg1:"`} {
		if got := LabelLen(l); got != 1 {
			t.Errorf("LabelLen(%q) = %d, want 1", l, got)
		}
		if got := LabelDist(l, "other"); got != 1 {
			t.Errorf("LabelDist(%q, other) = %d, want 1", l, got)
		}
	}
	// A well-formed empty payload still counts prefix + 0 characters.
	if got := LabelLen(`arg1:""`); got != 1 {
		t.Errorf("LabelLen(arg1:\"\") = %d, want 1", got)
	}
}

// BenchmarkLevenshteinKernels compares the banded kernel against the naive
// DP on a representative label-payload workload.
func BenchmarkLevenshteinKernels(b *testing.B) {
	pairs := [][2][]rune{
		{[]rune("AES/CBC/PKCS5Padding"), []rune("AES/GCM/NoPadding")},
		{[]rune("AES/CBC/PKCS5Padding"), []rune("AES/CBC/PKCS5Padding")},
		{[]rune("SHA1PRNG"), []rune("NativePRNG")},
		{[]rune("AES"), []rune("DESede/ECB/PKCS5Padding")},
	}
	b.Run("banded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				Levenshtein(p[0], p[1])
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				levenshteinNaive(p[0], p[1])
			}
		}
	})
}
