// Package textdist implements the distance metrics of the paper's §4.3:
// Levenshtein distance over label units, the Levenshtein similarity ratio
// (LSR), the path distance built from the longest common prefix, and the
// set-matching pathsDist / usageDist metrics that drive clustering.
//
// Units follow the paper: characters for string payloads; integers, bytes,
// and method names count as single units (changing any method name into
// another is exactly one substitution).
//
// The Levenshtein kernel is the banded (Ukkonen) variant: common affixes
// are trimmed, the band is seeded with the length-difference lower bound,
// and the band doubles until the computed distance fits inside it — at
// which point it is provably exact, so every caller sees the same values
// the naive full DP produces (levenshteinNaive, kept as the reference
// implementation for the differential property tests).
package textdist

import (
	"strings"
	"unicode/utf8"

	"repro/internal/match"
	"repro/internal/usage"
)

// Levenshtein computes the classic edit distance between two rune slices.
// The result is exactly the full-DP distance; the implementation trims
// common prefixes/suffixes and runs a doubling-band DP so near-identical
// labels (the common case in an abstracted corpus) exit early.
func Levenshtein(a, b []rune) int {
	// Trim the common prefix and suffix: edits never touch them.
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	// Band doubling, seeded with the length-difference lower bound: the
	// distance is always >= |n-m|, and once the band covers the computed
	// distance the banded DP is exact (no optimal path leaves the band).
	limit := max(n-m, m-n, 1)
	for {
		if d := levenshteinBounded(a, b, limit); d <= limit {
			return d
		}
		// d <= max(n, m) always, so the loop terminates once the band
		// covers the longer string.
		limit = min(limit*2, max(n, m))
	}
}

// levenshteinBounded computes the edit distance if it is <= k, returning
// k+1 otherwise (the caller widens the band). Only cells within |i-j| <= k
// of the diagonal are evaluated; cells outside carry an infinity sentinel
// so band-edge minima never leak in from stale values.
func levenshteinBounded(a, b []rune, k int) int {
	n, m := len(a), len(b)
	if n > m {
		a, b = b, a
		n, m = m, n
	}
	if m-n > k {
		return k + 1
	}
	const inf = int(^uint(0) >> 2)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		if j <= k {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= n; i++ {
		lo := max(1, i-k)
		hi := min(m, i+k)
		if lo == 1 {
			cur[0] = i
		} else {
			cur[lo-1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			v := inf
			if prev[j] < inf {
				v = prev[j] + 1
			}
			if cur[j-1] < inf {
				v = min(v, cur[j-1]+1)
			}
			if prev[j-1] < inf {
				v = min(v, prev[j-1]+cost)
			}
			cur[j] = v
			rowMin = min(rowMin, v)
		}
		if hi < m {
			cur[hi+1] = inf
		}
		// Every band cell already exceeds k: the final distance can only
		// grow, so report the overflow without finishing the DP.
		if rowMin > k {
			return k + 1
		}
		prev, cur = cur, prev
	}
	if prev[m] > k {
		return k + 1
	}
	return prev[m]
}

// levenshteinNaive is the reference full-DP implementation the banded
// kernel is differentially tested against. Unexported: production code
// always goes through Levenshtein.
func levenshteinNaive(a, b []rune) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// labelPayload extracts the string payload of an argument label like
// `arg1:"AES/CBC"`, returning the argument prefix, the payload, and whether
// the label carries a quoted string.
func labelPayload(l string) (prefix, payload string, isString bool) {
	i := strings.Index(l, `:"`)
	if i < 0 || i+2 > len(l)-1 || !strings.HasSuffix(l, `"`) {
		return "", "", false
	}
	return l[:i], l[i+2 : len(l)-1], true
}

// LabelLen returns the length of a label in paper units: the payload
// character count plus one for the prefix when the label carries a string
// constant; one unit otherwise. Counting runes in place keeps the hot
// uncached path allocation-free (no []rune conversion).
func LabelLen(l string) int {
	if _, payload, ok := labelPayload(l); ok {
		return utf8.RuneCountInString(payload) + 1
	}
	return 1
}

// LabelDist returns the Levenshtein distance between two node labels in
// paper units. Two string-constant labels with the same argument position
// compare character-wise on their payloads; all other label pairs compare
// as single units (0 if equal, max-substitution otherwise).
func LabelDist(a, b string) int {
	if a == b {
		return 0
	}
	pa, sa, aok := labelPayload(a)
	pb, sb, bok := labelPayload(b)
	if aok && bok && pa == pb {
		return Levenshtein([]rune(sa), []rune(sb))
	}
	// Substituting one whole label for another: the cost is bounded by the
	// larger unit length (delete extra units + substitute).
	return max(LabelLen(a), LabelLen(b))
}

// labelDistNaive is LabelDist over the naive Levenshtein kernel — the
// reference for the differential property tests.
func labelDistNaive(a, b string) int {
	if a == b {
		return 0
	}
	pa, sa, aok := labelPayload(a)
	pb, sb, bok := labelPayload(b)
	if aok && bok && pa == pb {
		return levenshteinNaive([]rune(sa), []rune(sb))
	}
	return max(LabelLen(a), LabelLen(b))
}

// LSR is the Levenshtein similarity ratio:
// LSR(l, l') = 1 − lev(l, l') / max(|l|, |l'|).
//
// Only same-position string-constant labels need the edit-distance DP:
// every other unequal pair has lev = max(|l|, |l'|) by construction, so the
// ratio short-circuits to the normalized cap 0 without computing lengths or
// distances. The values are bit-identical to the textbook formula (for the
// capped case 1 − max/max ≡ 0 exactly in IEEE arithmetic).
func LSR(a, b string) float64 {
	if a == b {
		return 1
	}
	pa, sa, aok := labelPayload(a)
	pb, sb, bok := labelPayload(b)
	if aok && bok && pa == pb {
		la := utf8.RuneCountInString(sa) + 1
		lb := utf8.RuneCountInString(sb) + 1
		return 1 - float64(Levenshtein([]rune(sa), []rune(sb)))/float64(max(la, lb))
	}
	return 0
}

// CommonPrefix returns the length of the longest common prefix of two
// paths (number of equal leading elements).
func CommonPrefix(p1, p2 usage.Path) int {
	n := min(len(p1), len(p2))
	for i := 0; i < n; i++ {
		if p1[i] != p2[i] {
			return i
		}
	}
	return n
}

// PathDist is the paper's path distance: 0 for identical paths, otherwise
//
//	1 − (j + LSR(p1[j], p2[j])) / max(|p1|, |p2|)
//
// where j is the common-prefix length and the LSR term is taken over the
// first mismatching elements (0 when one path is a strict prefix of the
// other).
func PathDist(p1, p2 usage.Path) float64 {
	if p1.Equal(p2) {
		return 0
	}
	j := CommonPrefix(p1, p2)
	mx := max(len(p1), len(p2))
	if mx == 0 {
		return 0
	}
	lsr := 0.0
	if j < len(p1) && j < len(p2) {
		lsr = LSR(p1[j], p2[j])
	}
	return 1 - (float64(j)+lsr)/float64(mx)
}

// PathsDist matches the paths of two feature sets (minimum-cost assignment)
// and sums the pairwise path distances; unmatched paths cost 1 each
// (paper §4.3's "smallest distance obtained by first matching the paths in
// both sets").
func PathsDist(f1, f2 []usage.Path) float64 {
	return match.MinCostSum(len(f1), len(f2), func(i, j int) float64 {
		return PathDist(f1[i], f2[j])
	}, 1)
}

// UsageDist is the distance between two usage changes: the average of the
// removed-set and added-set path distances.
func UsageDist(rem1, add1, rem2, add2 []usage.Path) float64 {
	return (PathsDist(rem1, rem2) + PathsDist(add1, add2)) / 2
}
