// Package textdist implements the distance metrics of the paper's §4.3:
// Levenshtein distance over label units, the Levenshtein similarity ratio
// (LSR), the path distance built from the longest common prefix, and the
// set-matching pathsDist / usageDist metrics that drive clustering.
//
// Units follow the paper: characters for string payloads; integers, bytes,
// and method names count as single units (changing any method name into
// another is exactly one substitution).
package textdist

import (
	"strings"

	"repro/internal/match"
	"repro/internal/usage"
)

// Levenshtein computes the classic edit distance between two rune slices.
func Levenshtein(a, b []rune) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// labelPayload extracts the string payload of an argument label like
// `arg1:"AES/CBC"`, returning the argument prefix, the payload, and whether
// the label carries a quoted string.
func labelPayload(l string) (prefix, payload string, isString bool) {
	i := strings.Index(l, `:"`)
	if i < 0 || !strings.HasSuffix(l, `"`) {
		return "", "", false
	}
	return l[:i], l[i+2 : len(l)-1], true
}

// LabelLen returns the length of a label in paper units: the payload
// character count plus one for the prefix when the label carries a string
// constant; one unit otherwise.
func LabelLen(l string) int {
	if _, payload, ok := labelPayload(l); ok {
		return len([]rune(payload)) + 1
	}
	return 1
}

// LabelDist returns the Levenshtein distance between two node labels in
// paper units. Two string-constant labels with the same argument position
// compare character-wise on their payloads; all other label pairs compare
// as single units (0 if equal, max-substitution otherwise).
func LabelDist(a, b string) int {
	if a == b {
		return 0
	}
	pa, sa, aok := labelPayload(a)
	pb, sb, bok := labelPayload(b)
	if aok && bok && pa == pb {
		return Levenshtein([]rune(sa), []rune(sb))
	}
	// Substituting one whole label for another: the cost is bounded by the
	// larger unit length (delete extra units + substitute).
	la, lb := LabelLen(a), LabelLen(b)
	if la > lb {
		return la
	}
	return lb
}

// LSR is the Levenshtein similarity ratio:
// LSR(l, l') = 1 − lev(l, l') / max(|l|, |l'|).
func LSR(a, b string) float64 {
	la, lb := LabelLen(a), LabelLen(b)
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(LabelDist(a, b))/float64(max)
}

// CommonPrefix returns the length of the longest common prefix of two
// paths (number of equal leading elements).
func CommonPrefix(p1, p2 usage.Path) int {
	n := len(p1)
	if len(p2) < n {
		n = len(p2)
	}
	for i := 0; i < n; i++ {
		if p1[i] != p2[i] {
			return i
		}
	}
	return n
}

// PathDist is the paper's path distance: 0 for identical paths, otherwise
//
//	1 − (j + LSR(p1[j], p2[j])) / max(|p1|, |p2|)
//
// where j is the common-prefix length and the LSR term is taken over the
// first mismatching elements (0 when one path is a strict prefix of the
// other).
func PathDist(p1, p2 usage.Path) float64 {
	if p1.Equal(p2) {
		return 0
	}
	j := CommonPrefix(p1, p2)
	max := len(p1)
	if len(p2) > max {
		max = len(p2)
	}
	if max == 0 {
		return 0
	}
	lsr := 0.0
	if j < len(p1) && j < len(p2) {
		lsr = LSR(p1[j], p2[j])
	}
	return 1 - (float64(j)+lsr)/float64(max)
}

// PathsDist matches the paths of two feature sets (minimum-cost assignment)
// and sums the pairwise path distances; unmatched paths cost 1 each
// (paper §4.3's "smallest distance obtained by first matching the paths in
// both sets").
func PathsDist(f1, f2 []usage.Path) float64 {
	return match.MinCostSum(len(f1), len(f2), func(i, j int) float64 {
		return PathDist(f1[i], f2[j])
	}, 1)
}

// UsageDist is the distance between two usage changes: the average of the
// removed-set and added-set path distances.
func UsageDist(rem1, add1, rem2, add2 []usage.Path) float64 {
	return (PathsDist(rem1, rem2) + PathsDist(add1, add2)) / 2
}
