package diffcode

// Benchmarks for the incremental artifact store (DESIGN.md §13). The number
// that matters is the warm/cold ratio: a re-run of the mining pipeline over
// an unchanged corpus with a populated -cache-dir must be at least 10x
// faster than the cold run that populated it — warm hits skip parsing and
// abstract interpretation entirely and only reinstantiate cached
// extractions.
//
//	make bench-incr            # writes BENCH_incr.json
//
// Without BENCH_INCR_OUT the snapshot runner skips, keeping `go test .`
// fast; the named benchmark runs under `-bench` as usual.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/obs"
)

// benchIncrCorpus is the shared incremental-benchmark workload: large enough
// that parse+interpret dominate a cold run, small enough for CI.
func benchIncrCorpus() *corpus.Corpus {
	return corpus.Generate(corpus.Config{Seed: 11, Scale: 0.4, Projects: 30, ExtraProjects: 3})
}

// benchMineOnce runs the full mining pipeline (mine + per-class filter)
// against a disk-backed artifact store over dir and returns the survivor
// count as a liveness check.
func benchMineOnce(c *corpus.Corpus, dir string, reg *obs.Registry) int {
	d := core.New(core.Options{
		Workers:   1,
		Metrics:   reg,
		Artifacts: artifact.New(artifact.Config{Dir: dir, Metrics: reg}),
	})
	analyzed := d.MineCorpus(c)
	survivors := 0
	for _, class := range cryptoapi.TargetClasses {
		survivors += len(d.RunClass(analyzed, class).Survivors)
	}
	return survivors
}

// benchIncrAt runs the pipeline cold (a fresh artifact directory every
// iteration) or warm (every iteration over one pre-populated directory).
func benchIncrAt(c *corpus.Corpus, warm bool) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var warmDir string
		if warm {
			warmDir = b.TempDir()
			benchMineOnce(c, warmDir, nil)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dir := warmDir
			if !warm {
				b.StopTimer()
				dir = b.TempDir()
				b.StartTimer()
			}
			if benchMineOnce(c, dir, nil) == 0 {
				b.Fatal("no survivors; workload exercises too little")
			}
		}
	}
}

// BenchmarkIncrementalMining compares a cold mining run (empty artifact
// directory) with a fully warm re-run over the same directory. The spread
// between the two sub-benchmarks is everything the artifact store saves:
// all parsing and all abstract interpretation.
func BenchmarkIncrementalMining(b *testing.B) {
	c := benchIncrCorpus()
	for _, warm := range []bool{false, true} {
		b.Run(fmt.Sprintf("warm=%t", warm), benchIncrAt(c, warm))
	}
}

// TestWriteBenchIncr snapshots the cold and warm mining timings and their
// ratio into BENCH_incr.json (diffcode-metrics/v1 schema, like the other
// snapshots). The speedup gauge is in thousandths: 25000 means the warm
// re-run is 25x faster. Acceptance (asserted here, not just recorded):
// speedup_milli >= 10000 — a warm re-run is at least 10x faster than cold —
// and the warm run's artifact.misses stays 0. Skips unless BENCH_INCR_OUT
// is set.
func TestWriteBenchIncr(t *testing.T) {
	out := os.Getenv("BENCH_INCR_OUT")
	if out == "" {
		t.Skip("set BENCH_INCR_OUT=<file> to write the incremental-run snapshot")
	}
	c := benchIncrCorpus()
	reg := obs.NewRegistry()
	// Interleave cold/warm rounds and keep each variant's fastest round:
	// min-of-N cancels the machine's slow drift (GC phase, neighboring
	// load) that a single back-to-back pair would bake into the ratio.
	const rounds = 3
	var cold, warmRes testing.BenchmarkResult
	for i := 0; i < rounds; i++ {
		co := testing.Benchmark(benchIncrAt(c, false))
		wa := testing.Benchmark(benchIncrAt(c, true))
		if co.N == 0 || wa.N == 0 {
			t.Fatal("benchmark did not run")
		}
		if i == 0 || co.NsPerOp() < cold.NsPerOp() {
			cold = co
		}
		if i == 0 || wa.NsPerOp() < warmRes.NsPerOp() {
			warmRes = wa
		}
	}
	reg.Gauge("bench.incremental.cold_ns_per_op").Set(cold.NsPerOp())
	reg.Gauge("bench.incremental.warm_ns_per_op").Set(warmRes.NsPerOp())
	speedup := int64(0)
	if warmRes.NsPerOp() > 0 {
		speedup = cold.NsPerOp() * 1000 / warmRes.NsPerOp()
	}
	reg.Gauge("bench.incremental.speedup_milli").Set(speedup)

	// One instrumented warm run for the hit-ratio gauges: every change must
	// resolve from the store (zero analysis misses on a warm directory).
	dir := t.TempDir()
	benchMineOnce(c, dir, nil)
	wreg := obs.NewRegistry()
	benchMineOnce(c, dir, wreg)
	s := obs.TakeSnapshot(wreg, false)
	reg.Gauge("bench.incremental.warm_hits").Set(s.Counters["artifact.hits"])
	reg.Gauge("bench.incremental.warm_misses").Set(s.Counters["artifact.misses"])

	t.Logf("mining  cold %12d ns/op   warm %12d ns/op   speedup %d.%03dx (hits=%d misses=%d)",
		cold.NsPerOp(), warmRes.NsPerOp(), speedup/1000, speedup%1000,
		s.Counters["artifact.hits"], s.Counters["artifact.misses"])
	if err := obs.WriteSnapshotFile(out, reg, false); err != nil {
		t.Fatalf("writing incremental snapshot: %v", err)
	}
	t.Logf("incremental-run snapshot written to %s", out)
	if speedup < 10000 {
		t.Errorf("warm re-run speedup %d.%03dx below the 10x acceptance bound", speedup/1000, speedup%1000)
	}
	if s.Counters["artifact.analysis.misses"] != 0 {
		t.Errorf("warm run had %d analysis misses, want 0", s.Counters["artifact.analysis.misses"])
	}
}
