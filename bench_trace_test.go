package diffcode

// Benchmarks for the hierarchical tracing layer (DESIGN.md §12). Tracing is
// observation-only and off by default; the number that matters is the
// overhead a traced context adds to the interpreter's step loop — span
// minting, the step-count attribute, and the nil-checks the untraced path
// pays. The acceptance bound is <10% ns/op over the untraced hot loop on the
// same pre-parsed program (overhead_milli < 1100).
//
//	make bench-trace           # writes BENCH_trace.json
//
// Without BENCH_TRACE_OUT the snapshot runner skips, keeping `go test .`
// fast; the named benchmark runs under `-bench` as usual.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/trace"
)

// benchInterpreterTracedAt runs the interpreter step loop on the shared
// benchmark program either on an untraced context (the default every
// non--trace run takes) or under a fresh root span per iteration (the
// traced path, including the span mint and End bookkeeping a real request
// pays).
func benchInterpreterTracedAt(traced bool) func(*testing.B) {
	return func(b *testing.B) {
		prog := analysis.ParseProgram(benchSources())
		tr := trace.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			var root *trace.Span
			if traced {
				root = tr.Root("bench")
				ctx = trace.NewContext(ctx, root)
			}
			res, err := analysis.AnalyzeBudgetedCtx(ctx, prog, analysis.Options{})
			if err != nil || len(res.Objs) == 0 {
				b.Fatalf("analysis failed: %v", err)
			}
			root.End()
		}
	}
}

// BenchmarkInterpreterTraced compares the interpreter hot loop on an
// untraced context and under a traced one. The spread between the two
// sub-benchmarks is the whole per-request cost of tracing the interpreter
// stage: one span, one attribute, one End.
func BenchmarkInterpreterTraced(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("trace=%t", traced), benchInterpreterTracedAt(traced))
	}
}

// TestWriteBenchTrace snapshots the traced/untraced interpreter timings into
// BENCH_trace.json (diffcode-metrics/v1 schema, like the other snapshots)
// and asserts the acceptance bound: overhead_milli < 1100, i.e. a traced
// context costs the interpreter hot loop less than 10%. The gauge is in
// thousandths: 1050 means tracing costs 5%. Skips unless BENCH_TRACE_OUT is
// set.
func TestWriteBenchTrace(t *testing.T) {
	out := os.Getenv("BENCH_TRACE_OUT")
	if out == "" {
		t.Skip("set BENCH_TRACE_OUT=<file> to write the trace overhead snapshot")
	}
	reg := obs.NewRegistry()
	// Interleave off/on rounds and keep each variant's fastest round: the
	// two loops allocate near-identically from round to round, so min-of-N
	// cancels the machine's slow drift (GC phase, neighboring load) that a
	// single back-to-back pair would bake into the ratio.
	const rounds = 3
	var off, on testing.BenchmarkResult
	for i := 0; i < rounds; i++ {
		o := testing.Benchmark(benchInterpreterTracedAt(false))
		p := testing.Benchmark(benchInterpreterTracedAt(true))
		if o.N == 0 || p.N == 0 {
			t.Fatal("benchmark did not run")
		}
		if i == 0 || o.NsPerOp() < off.NsPerOp() {
			off = o
		}
		if i == 0 || p.NsPerOp() < on.NsPerOp() {
			on = p
		}
	}
	reg.Gauge("bench.interpreter_trace.off_ns_per_op").Set(off.NsPerOp())
	reg.Gauge("bench.interpreter_trace.on_ns_per_op").Set(on.NsPerOp())
	reg.Gauge("bench.interpreter_trace.off_allocs_per_op").Set(off.AllocsPerOp())
	reg.Gauge("bench.interpreter_trace.on_allocs_per_op").Set(on.AllocsPerOp())
	overhead := int64(0)
	if off.NsPerOp() > 0 {
		overhead = on.NsPerOp() * 1000 / off.NsPerOp()
	}
	reg.Gauge("bench.interpreter_trace.overhead_milli").Set(overhead)
	t.Logf("interpreter  untraced %12d ns/op   traced %12d ns/op   overhead %d.%03dx",
		off.NsPerOp(), on.NsPerOp(), overhead/1000, overhead%1000)
	if overhead >= 1100 {
		t.Errorf("traced interpreter overhead %d.%03dx exceeds the 1.100x acceptance bound",
			overhead/1000, overhead%1000)
	}
	if err := obs.WriteSnapshotFile(out, reg, false); err != nil {
		t.Fatalf("writing trace snapshot: %v", err)
	}
	t.Logf("trace overhead snapshot written to %s", out)
}
