package diffcode_test

import (
	"fmt"

	diffcode "repro"
)

// The paper's Figure 2 change: switching AES from implicit ECB to CBC with
// an initialization vector.
const exOld = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES";
    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
        } catch (Exception e) {}
    }
}`

const exNew = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES/CBC/PKCS5Padding";
    protected void setKeyAndIV(Secret key, String iv) {
        try {
            IvParameterSpec ivSpec = new IvParameterSpec(Hex.decodeHex(iv.toCharArray()));
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        } catch (Exception e) {}
    }
}`

// ExampleDiffSources derives the usage change of the paper's Figure 2(d).
func ExampleDiffSources() {
	changes := diffcode.DiffSources(exOld, exNew, diffcode.Cipher, diffcode.Options{})
	kept, _ := diffcode.Filter(changes)
	fmt.Print(kept[0].String())
	// Output:
	// - Cipher getInstance arg1:"AES"
	// + Cipher getInstance arg1:"AES/CBC/PKCS5Padding"
	// + Cipher init arg3:IvParameterSpec
}

// ExampleCheckSource flags the vulnerable version with the elicited rules.
func ExampleCheckSource() {
	for _, v := range diffcode.CheckSource(exOld, diffcode.RuleContext{}, diffcode.Options{}) {
		fmt.Println(v.Rule.ID, "-", v.Rule.Description)
	}
	// Output:
	// R5 - Use the BouncyCastle provider for Cipher
	// R7 - Do not use Cipher in AES/ECB mode
}

// ExampleParseRule compiles a custom rule in the paper's notation.
func ExampleParseRule() {
	rule, err := diffcode.ParseRule("ORG1", "Ban RC4",
		`Cipher : getInstance(X) ∧ X=RC4`)
	if err != nil {
		panic(err)
	}
	res := diffcode.AnalyzeUsages(`
class T { void m() throws Exception { Cipher c = Cipher.getInstance("RC4"); } }`,
		diffcode.Options{})
	matched, _ := rule.Matches(res, diffcode.RuleContext{})
	fmt.Println(matched)
	// Output: true
}

// ExampleSuggestRule builds a checkable rule from a mined fix.
func ExampleSuggestRule() {
	changes := diffcode.DiffSources(exOld, exNew, diffcode.Cipher, diffcode.Options{})
	kept, _ := diffcode.Filter(changes)
	rule := diffcode.SuggestRule(kept[0])
	oldMatch, _ := rule.Matches(diffcode.AnalyzeUsages(exOld, diffcode.Options{}), diffcode.RuleContext{})
	newMatch, _ := rule.Matches(diffcode.AnalyzeUsages(exNew, diffcode.Options{}), diffcode.RuleContext{})
	fmt.Println(oldMatch, newMatch)
	// Output: true false
}
