# Developer entry points. Everything here is plain `go` — the Makefile only
# names the common invocations so CI and humans run the same commands.

GO ?= go

.PHONY: all build vet test race serve bench bench-short bench-baseline bench-compare bench-cache bench-why bench-serve bench-trace bench-incr bench-summary clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the analysis server (checker-as-a-service) on its default address.
serve:
	$(GO) run ./cmd/diffcoded

# Full benchmark suite (figures + ablations + named perf benchmarks).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration per benchmark: a smoke pass cheap enough for CI.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Snapshot the named perf benchmarks (parser, interpreter hot loop,
# clustering) into BENCH_baseline.json using the diffcode-metrics/v1
# schema, so an optimisation PR can diff its run against the baseline.
bench-baseline:
	BENCH_BASELINE_OUT=$(CURDIR)/BENCH_baseline.json $(GO) test -run TestWriteBenchBaseline -count=1 -v .

# Run the pooled hot paths at 1 worker (the exact serial pipeline) and at 8
# workers, and snapshot both timings plus the speedup ratio into
# BENCH_parallel.json (same schema as the baseline).
bench-compare:
	BENCH_PARALLEL_OUT=$(CURDIR)/BENCH_parallel.json $(GO) test -run TestWriteBenchParallel -count=1 -v .

# Distance-cache speedup snapshot: the clustering distance matrix over a
# duplicate-rich corpus with the memoized engine on vs off, at 1 and 8
# workers, into BENCH_cache.json (same schema as the other snapshots).
bench-cache:
	BENCH_CACHE_OUT=$(CURDIR)/BENCH_cache.json $(GO) test -run TestWriteBenchCache -count=1 -v .

# Provenance overhead snapshot: the interpreter hot loop with -why's def-site
# tagging on vs off, plus the witness reconstruction cost, into
# BENCH_why.json (same schema). Acceptance: overhead_milli < 1100 (<10%).
bench-why:
	BENCH_WHY_OUT=$(CURDIR)/BENCH_why.json $(GO) test -run TestWriteBenchWhy -count=1 -v .

# Server throughput snapshot: concurrent /v1/check load through the full
# admission → guard → analyze → respond ladder over real HTTP, into
# BENCH_serve.json (same schema): req/sec plus p50/p99 request latency.
bench-serve:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json $(GO) test -run TestWriteBenchServe -count=1 -v .

# Trace overhead snapshot: the interpreter hot loop on an untraced context
# vs under a per-run root span, into BENCH_trace.json (same schema).
# Acceptance: overhead_milli < 1100 (<10%), asserted by the test itself.
bench-trace:
	BENCH_TRACE_OUT=$(CURDIR)/BENCH_trace.json $(GO) test -run TestWriteBenchTrace -count=1 -v .

# Incremental-run snapshot: the mining pipeline cold (empty artifact
# directory) vs fully warm (re-run over the populated directory), into
# BENCH_incr.json (same schema). Acceptance: speedup_milli >= 10000 (>=10x)
# and zero analysis misses on the warm run, asserted by the test itself.
bench-incr:
	BENCH_INCR_OUT=$(CURDIR)/BENCH_incr.json $(GO) test -run TestWriteBenchIncr -count=1 -v .

# Summary-memoization snapshot: the abstract interpreter over a helper-heavy
# program with per-method summaries on vs off, into BENCH_summary.json (same
# schema). Acceptance: speedup_milli >= 3000 (>=3x) and hits > misses on the
# memoized run, asserted by the test itself.
bench-summary:
	BENCH_SUMMARY_OUT=$(CURDIR)/BENCH_summary.json $(GO) test -run TestWriteBenchSummary -count=1 -v .

clean:
	rm -f BENCH_baseline.json BENCH_parallel.json BENCH_cache.json BENCH_why.json BENCH_serve.json BENCH_trace.json BENCH_incr.json BENCH_summary.json
