// Package diffcode is a from-scratch Go reproduction of the system in
// "Inferring Crypto API Rules from Code Changes" (Paletov, Tsankov,
// Raychev, Vechev — PLDI 2018).
//
// The package exposes the two systems of the paper as a documented facade:
//
//   - DiffCode: the data-driven pipeline that mines code changes from
//     repository histories, abstracts each version's crypto API usage into
//     rooted DAGs, pairs and diffs them into usage changes (F−, F+),
//     filters the >99% of changes that are not semantic security fixes, and
//     hierarchically clusters the survivors so security rules can be
//     elicited.
//
//   - CryptoChecker: a checker for the 13 elicited security rules (R1–R13
//     of the paper's Figure 9) plus the five CryptoLint reference rules,
//     evaluated over lightweight abstract interpretation of Java sources.
//
// Everything is implemented on stdlib only, including the Java frontend
// (lexer, parser, AST), the abstract interpreter, the assignment solver
// used for DAG pairing, and the synthetic GitHub-corpus generator that
// substitutes for the paper's mined dataset (see DESIGN.md).
//
// # Quick start
//
//	dc := diffcode.New(diffcode.Options{})
//	changes := dc.DiffSources(oldJava, newJava, diffcode.Cipher)
//	kept, stats := diffcode.Filter(changes)
//	fmt.Println(stats, kept[0])
//
// See the examples/ directory for runnable end-to-end programs and
// cmd/evalrepro for the harness that regenerates every table and figure of
// the paper's evaluation.
package diffcode
