package diffcode

// Benchmarks for memoized per-method summaries (DESIGN.md §14). The number
// that matters is the on/off ratio on a helper-heavy program: with
// summaries off, the interpreter re-inlines every helper body at every call
// site in every fork (the re-inlining tax); with summaries on, each unique
// (method, arguments, context) executes once and replays everywhere else.
//
//	make bench-summary         # writes BENCH_summary.json
//
// Without BENCH_SUMMARY_OUT the snapshot runner skips, keeping `go test .`
// fast; the named benchmark runs under `-bench` as usual.

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/summary"
)

// benchSummarySource builds the helper-heavy workload: entries entry
// methods, each invoking the same chunky helper four times with identical
// constant arguments. The helper body is stmts statements of local string
// work ending in a crypto-API call, so a single execution is expensive and
// a replay is cheap — exactly the shape of real utility-wrapped crypto
// code, where one doCrypt helper is called from dozens of call sites.
func benchSummarySource(entries, stmts int) string {
	var sb strings.Builder
	sb.WriteString("class Bench {\n")
	for i := 0; i < entries; i++ {
		fmt.Fprintf(&sb, "    void entry%d() {\n", i)
		for j := 0; j < 4; j++ {
			sb.WriteString("        work(\"AES/CBC/PKCS5Padding\");\n")
		}
		sb.WriteString("    }\n")
	}
	sb.WriteString("    Cipher work(String s) {\n")
	for i := 0; i < stmts; i++ {
		fmt.Fprintf(&sb, "        String x%d = s + \"pad%d\";\n", i, i)
	}
	sb.WriteString("        Cipher c = Cipher.getInstance(s);\n")
	sb.WriteString("        c.init(Cipher.ENCRYPT_MODE, key);\n")
	sb.WriteString("        return c;\n")
	sb.WriteString("    }\n}\n")
	return sb.String()
}

// benchSummaryOnce analyzes the workload once, with or without a (fresh)
// summary table, and returns the cipher-object count as a liveness check.
func benchSummaryOnce(src string, summaries bool, reg *obs.Registry) int {
	opts := analysis.Options{}
	if summaries {
		opts.Summaries = summary.NewTable(nil, reg)
	}
	r := analysis.AnalyzeSource(src, opts)
	return len(r.ObjsOfType("Cipher"))
}

// benchSummaryAt runs the abstract interpretation of the helper-heavy
// program with summaries on (a fresh table every iteration — the measured
// win is within-run memoization, not cross-run caching) or off.
func benchSummaryAt(src string, summaries bool) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchSummaryOnce(src, summaries, nil) == 0 {
				b.Fatal("no cipher objects; workload exercises too little")
			}
		}
	}
}

// BenchmarkSummaries compares the summaries-off interpreter with the
// memoizing one on the helper-heavy workload. The spread is the re-inlining
// tax: every call past the first replays a recorded effect triple instead
// of re-interpreting the helper body.
func BenchmarkSummaries(b *testing.B) {
	src := benchSummarySource(24, 160)
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("summaries=%t", on), benchSummaryAt(src, on))
	}
}

// TestWriteBenchSummary snapshots the summaries-off and summaries-on
// timings and their ratio into BENCH_summary.json (diffcode-metrics/v1
// schema). The speedup gauge is in thousandths: 5000 means the memoized
// interpreter is 5x faster. Acceptance (asserted here, not just recorded):
// speedup_milli >= 3000 on the helper-heavy workload, and the memoized run
// reports more hits than misses. Skips unless BENCH_SUMMARY_OUT is set.
func TestWriteBenchSummary(t *testing.T) {
	out := os.Getenv("BENCH_SUMMARY_OUT")
	if out == "" {
		t.Skip("set BENCH_SUMMARY_OUT=<file> to write the summary-run snapshot")
	}
	src := benchSummarySource(24, 160)
	reg := obs.NewRegistry()
	// Interleave off/on rounds and keep each variant's fastest round:
	// min-of-N cancels the machine's slow drift (GC phase, neighboring
	// load) that a single back-to-back pair would bake into the ratio.
	const rounds = 3
	var off, on testing.BenchmarkResult
	for i := 0; i < rounds; i++ {
		of := testing.Benchmark(benchSummaryAt(src, false))
		onr := testing.Benchmark(benchSummaryAt(src, true))
		if of.N == 0 || onr.N == 0 {
			t.Fatal("benchmark did not run")
		}
		if i == 0 || of.NsPerOp() < off.NsPerOp() {
			off = of
		}
		if i == 0 || onr.NsPerOp() < on.NsPerOp() {
			on = onr
		}
	}
	reg.Gauge("bench.summary.off_ns_per_op").Set(off.NsPerOp())
	reg.Gauge("bench.summary.on_ns_per_op").Set(on.NsPerOp())
	speedup := int64(0)
	if on.NsPerOp() > 0 {
		speedup = off.NsPerOp() * 1000 / on.NsPerOp()
	}
	reg.Gauge("bench.summary.speedup_milli").Set(speedup)

	// One instrumented memoized run for the hit-ratio gauges: the workload
	// calls the helper 96 times with one key, so hits must dwarf misses.
	hreg := obs.NewRegistry()
	benchSummaryOnce(src, true, hreg)
	s := obs.TakeSnapshot(hreg, false)
	reg.Gauge("bench.summary.hits").Set(s.Counters["summary.hits"])
	reg.Gauge("bench.summary.misses").Set(s.Counters["summary.misses"])

	t.Logf("interpret  off %12d ns/op   on %12d ns/op   speedup %d.%03dx (hits=%d misses=%d)",
		off.NsPerOp(), on.NsPerOp(), speedup/1000, speedup%1000,
		s.Counters["summary.hits"], s.Counters["summary.misses"])
	if err := obs.WriteSnapshotFile(out, reg, false); err != nil {
		t.Fatalf("writing summary snapshot: %v", err)
	}
	t.Logf("summary-run snapshot written to %s", out)
	if speedup < 3000 {
		t.Errorf("memoized speedup %d.%03dx below the 3x acceptance bound", speedup/1000, speedup%1000)
	}
	if s.Counters["summary.hits"] <= s.Counters["summary.misses"] {
		t.Errorf("memoized run hits=%d misses=%d, want hits > misses",
			s.Counters["summary.hits"], s.Counters["summary.misses"])
	}
}
