package diffcode

// Speedup runner for the pooled hot paths. Not a test of behavior: when
// BENCH_PARALLEL_OUT is set it runs each pooled benchmark at 1 worker (the
// exact serial pipeline) and at 8 workers, and writes both timings plus the
// speedup ratio as a metrics snapshot (the same diffcode-metrics/v1 schema
// the CLIs emit with -metrics):
//
//	make bench-compare         # writes BENCH_parallel.json
//
// Speedups only show up on multi-core hardware — the snapshot records
// GOMAXPROCS so a flat ratio on a single-core runner is self-explaining.
// Without the environment variable the test skips, keeping `go test ./...`
// fast and deterministic.

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// parallelWorkers is the sweep's parallel arm: the ISSUE's speedup target
// is measured at 8 workers.
const parallelWorkers = 8

// parallelBenchmarks are the pooled hot paths. Keep this list in sync with
// the worker-sweep benchmarks in bench_test.go.
var parallelBenchmarks = []struct {
	name string
	fn   func(workers int) func(*testing.B)
}{
	{"mine_corpus", benchMineCorpusAt},
	{"clustering_dist_matrix", benchDistMatrixAt},
	{"check_corpus", benchCheckCorpusAt},
}

func TestWriteBenchParallel(t *testing.T) {
	out := os.Getenv("BENCH_PARALLEL_OUT")
	if out == "" {
		t.Skip("set BENCH_PARALLEL_OUT=<file> to write the parallel speedup snapshot")
	}
	reg := obs.NewRegistry()
	reg.Gauge("bench.gomaxprocs").Set(int64(runtime.GOMAXPROCS(0)))
	for _, pb := range parallelBenchmarks {
		serial := testing.Benchmark(pb.fn(1))
		par := testing.Benchmark(pb.fn(parallelWorkers))
		if serial.N == 0 || par.N == 0 {
			t.Fatalf("benchmark %s did not run", pb.name)
		}
		reg.Gauge("bench." + pb.name + ".workers1_ns_per_op").Set(serial.NsPerOp())
		reg.Gauge("bench." + pb.name + ".workers8_ns_per_op").Set(par.NsPerOp())
		// Speedup in thousandths (the schema's gauges are integers):
		// 3000 = 3.0x faster at 8 workers than serial.
		speedup := int64(0)
		if par.NsPerOp() > 0 {
			speedup = serial.NsPerOp() * 1000 / par.NsPerOp()
		}
		reg.Gauge("bench." + pb.name + ".speedup_milli").Set(speedup)
		t.Logf("%-24s workers=1 %12d ns/op   workers=%d %12d ns/op   speedup %d.%03dx",
			pb.name, serial.NsPerOp(), parallelWorkers, par.NsPerOp(),
			speedup/1000, speedup%1000)
	}
	if err := obs.WriteSnapshotFile(out, reg, false); err != nil {
		t.Fatalf("writing parallel snapshot: %v", err)
	}
	t.Logf("parallel speedup snapshot written to %s", out)
}
