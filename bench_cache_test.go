package diffcode

// Benchmarks for the memoized distance engine (DESIGN.md §9). The corpus
// here is synthesized with a controlled duplicate ratio — the acceptance
// scenario is a ≥30% duplicate corpus, which is what mined usage changes
// look like after abstraction (the same fix recurs across projects) — so
// the cached/uncached ratio measures all three memoization levels: label
// caching, path caching, and the matrix-level fingerprint fan-out.
//
//	make bench-cache           # writes BENCH_cache.json
//
// Without BENCH_CACHE_OUT the snapshot runner skips, keeping `go test .`
// fast; the named benchmarks run under `-bench` as usual.

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/distcache"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/textdist"
	"repro/internal/usage"
)

// cacheBenchChanges synthesizes n usage changes of which dupFrac (0..1) are
// exact duplicates of earlier ones. Labels carry long string payloads so the
// uncached kernels pay a real Levenshtein cost per pair.
func cacheBenchChanges(n int, dupFrac float64) []UsageChange {
	algs := []string{
		"AES/ECB/PKCS5Padding", "AES/CBC/PKCS5Padding", "AES/GCM/NoPadding",
		"DES/ECB/PKCS5Padding", "DESede/CBC/PKCS5Padding", "RC4",
		"Blowfish/CBC/PKCS5Padding", "AES/CTR/NoPadding",
	}
	extras := []string{"", "arg3:IvParameterSpec", "arg2:SecureRandom", `arg2:"SHA1PRNG"`}
	distinct := n - int(float64(n)*dupFrac)
	if distinct < 2 {
		distinct = 2
	}
	out := make([]UsageChange, n)
	for i := range out {
		k := i % distinct // indices >= distinct repeat earlier changes exactly
		from := algs[k%len(algs)]
		to := algs[(k+3)%len(algs)]
		c := UsageChange{Class: "Cipher"}
		c.Removed = []usage.Path{
			{"Cipher", "getInstance", `arg1:"` + from + `"`},
			{"Cipher", "init", fmt.Sprintf("arg%d:ENCRYPT_MODE", k%3+1)},
		}
		c.Added = []usage.Path{{"Cipher", "getInstance", `arg1:"` + to + `"`}}
		if e := extras[k%len(extras)]; e != "" {
			c.Added = append(c.Added, usage.Path{"Cipher", "init", e})
		}
		out[i] = c
	}
	return out
}

// benchDistMatrixCachedAt builds the distance matrix over the duplicate-rich
// corpus at a fixed worker count, with or without a memoized engine. A fresh
// engine per iteration measures the cold-cache cost (interning included),
// which is the honest comparison against the uncached path.
func benchDistMatrixCachedAt(workers int, cached bool) func(*testing.B) {
	return func(b *testing.B) {
		changes := cacheBenchChanges(120, 0.4)
		p := parallel.New(workers, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var eng *distcache.Engine
			if cached {
				eng = distcache.New(nil)
			}
			if len(cluster.DistMatrixEngine(changes, nil, p, eng)) != len(changes) {
				b.Fatal("bad matrix")
			}
		}
	}
}

// BenchmarkDistMatrixCached sweeps the distance matrix over cache on/off and
// worker counts 1 and 8 on a 40%-duplicate corpus.
func BenchmarkDistMatrixCached(b *testing.B) {
	for _, w := range []int{1, 8} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("cache=%t/workers%d", cached, w)
			b.Run(name, benchDistMatrixCachedAt(w, cached))
		}
	}
}

// levenshteinNaiveRef is a reference full-DP copy for the root-level kernel
// benchmark (the production reference lives unexported in textdist).
func levenshteinNaiveRef(a, b []rune) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// levenshteinPairs is the banded-kernel workload: near-identical pairs (the
// abstracted-corpus common case the band exploits) and dissimilar pairs.
var levenshteinPairs = [][2]string{
	{"AES/CBC/PKCS5Padding", "AES/CBC/PKCS7Padding"},
	{"AES/CBC/PKCS5Padding", "AES/GCM/NoPadding"},
	{"DESede/CBC/PKCS5Padding", "DESede/ECB/PKCS5Padding"},
	{"SHA1PRNG", "NativePRNG"},
	{"Blowfish/CBC/PKCS5Padding", "RC4"},
	{"AES", "AES/CBC/PKCS5Padding"},
}

// BenchmarkLevenshteinBanded compares the early-exit banded kernel against
// the naive full DP over the same label pairs.
func BenchmarkLevenshteinBanded(b *testing.B) {
	runes := make([][2][]rune, len(levenshteinPairs))
	for i, p := range levenshteinPairs {
		runes[i] = [2][]rune{[]rune(p[0]), []rune(p[1])}
	}
	b.Run("banded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range runes {
				textdist.Levenshtein(p[0], p[1])
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range runes {
				levenshteinNaiveRef(p[0], p[1])
			}
		}
	})
}

// BenchmarkPathDistUncached is the allocation regression guard for the
// LabelLen fix: the uncached PathDist used to convert payloads to []rune on
// every comparison; counting runes in place dropped those allocations
// (check with -benchmem — the engine-free path is what the -dist-cache=false
// toggle runs).
func BenchmarkPathDistUncached(b *testing.B) {
	changes := cacheBenchChanges(40, 0)
	var paths []usage.Path
	for _, c := range changes {
		paths = append(paths, c.Removed...)
		paths = append(paths, c.Added...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := range paths {
			for y := x + 1; y < len(paths); y++ {
				textdist.PathDist(paths[x], paths[y])
			}
		}
	}
}

// TestWriteBenchCache snapshots the cache-on/off distance-matrix timings at
// workers 1 and 8 into BENCH_cache.json (diffcode-metrics/v1 schema, like
// the baseline and parallel snapshots). Skips unless BENCH_CACHE_OUT is set.
func TestWriteBenchCache(t *testing.T) {
	out := os.Getenv("BENCH_CACHE_OUT")
	if out == "" {
		t.Skip("set BENCH_CACHE_OUT=<file> to write the cache speedup snapshot")
	}
	reg := obs.NewRegistry()
	reg.Gauge("bench.gomaxprocs").Set(int64(runtime.GOMAXPROCS(0)))
	reg.Gauge("bench.cache_corpus.changes").Set(120)
	reg.Gauge("bench.cache_corpus.duplicate_permille").Set(400)
	for _, w := range []int{1, 8} {
		uncached := testing.Benchmark(benchDistMatrixCachedAt(w, false))
		cached := testing.Benchmark(benchDistMatrixCachedAt(w, true))
		if uncached.N == 0 || cached.N == 0 {
			t.Fatal("benchmark did not run")
		}
		reg.Gauge(fmt.Sprintf("bench.dist_matrix.workers%d_uncached_ns_per_op", w)).Set(uncached.NsPerOp())
		reg.Gauge(fmt.Sprintf("bench.dist_matrix.workers%d_cached_ns_per_op", w)).Set(cached.NsPerOp())
		// Speedup in thousandths: 2000 = the cached matrix is 2.0x faster.
		speedup := int64(0)
		if cached.NsPerOp() > 0 {
			speedup = uncached.NsPerOp() * 1000 / cached.NsPerOp()
		}
		reg.Gauge(fmt.Sprintf("bench.dist_matrix.workers%d_speedup_milli", w)).Set(speedup)
		t.Logf("dist_matrix workers=%d  uncached %12d ns/op   cached %12d ns/op   speedup %d.%03dx",
			w, uncached.NsPerOp(), cached.NsPerOp(), speedup/1000, speedup%1000)
	}
	banded := testing.Benchmark(func(b *testing.B) {
		runes := make([][2][]rune, len(levenshteinPairs))
		for i, p := range levenshteinPairs {
			runes[i] = [2][]rune{[]rune(p[0]), []rune(p[1])}
		}
		for i := 0; i < b.N; i++ {
			for _, p := range runes {
				textdist.Levenshtein(p[0], p[1])
			}
		}
	})
	reg.Gauge("bench.levenshtein.banded_ns_per_op").Set(banded.NsPerOp())
	if err := obs.WriteSnapshotFile(out, reg, false); err != nil {
		t.Fatalf("writing cache snapshot: %v", err)
	}
	t.Logf("cache speedup snapshot written to %s", out)
}
