package diffcode

import (
	"repro/internal/analysis"
	"repro/internal/change"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/distcache"
	"repro/internal/mining"
	"repro/internal/resilience"
	"repro/internal/ruledsl"
	"repro/internal/rules"
	"repro/internal/textdiff"
	"repro/internal/usage"
)

// Target API class names (the paper's Figure 5).
const (
	Cipher          = cryptoapi.Cipher
	IvParameterSpec = cryptoapi.IvParameterSpec
	MessageDigest   = cryptoapi.MessageDigest
	SecretKeySpec   = cryptoapi.SecretKeySpec
	SecureRandom    = cryptoapi.SecureRandom
	PBEKeySpec      = cryptoapi.PBEKeySpec
)

// TargetClasses lists the six target classes in the paper's order.
func TargetClasses() []string { return append([]string{}, cryptoapi.TargetClasses...) }

// Re-exported pipeline types. See the internal packages for full method
// documentation; the aliases below form the supported public surface.
type (
	// Options configures analysis depth, inlining, and parallelism.
	Options = core.Options
	// DiffCode is the end-to-end mining pipeline.
	DiffCode = core.DiffCode
	// AnalyzedChange is a code change with both versions analyzed.
	AnalyzedChange = core.AnalyzedChange
	// UsageChange is the paper's (F−, F+) feature diff for one object.
	UsageChange = change.UsageChange
	// FilterStats counts survivors after each filter stage (fsame, fadd,
	// frem, fdup).
	FilterStats = change.FilterStats
	// Meta is the provenance of a mined change.
	Meta = change.Meta
	// Path is a usage-DAG feature path.
	Path = usage.Path
	// Graph is a rooted usage DAG (paper §3.4).
	Graph = usage.Graph
	// Dendrogram is a hierarchical-clustering tree node.
	Dendrogram = cluster.Node
	// Rule is a security rule t : φ (paper §6.3).
	Rule = rules.Rule
	// RuleContext carries project facts for context-sensitive rules (R6).
	RuleContext = rules.Context
	// Violation is a matched rule with witnesses.
	Violation = rules.Violation
	// ChangeType classifies a change as fix, bug, or non-semantic.
	ChangeType = rules.ChangeType
	// CryptoChecker checks programs against a rule set.
	CryptoChecker = core.CryptoChecker
	// CodeChange is a mined old/new source pair.
	CodeChange = mining.CodeChange
	// Corpus is a generated project data set.
	Corpus = corpus.Corpus
	// CorpusConfig parameterizes corpus generation.
	CorpusConfig = corpus.Config
	// Project is one repository (history + snapshot).
	Project = corpus.Project
	// Evaluation regenerates the paper's tables and figures.
	Evaluation = core.Evaluation
	// ElicitedRule is one automatically elicited rule: a cluster of mined
	// fixes plus the rule suggested from its representative.
	ElicitedRule = core.ElicitedRule
	// FailureLedger records every change or project the pipeline skipped
	// instead of dying on (degraded-mode bookkeeping).
	FailureLedger = resilience.Ledger
	// FailureEntry is one recorded skip: task, phase, category, error.
	FailureEntry = resilience.Entry
)

// Change classification outcomes (paper §6.2).
const (
	NonSemantic = rules.NonSemantic
	SecurityFix = rules.SecurityFix
	BuggyChange = rules.BuggyChange
)

// New returns a DiffCode pipeline with the given options.
func New(opts Options) *DiffCode { return core.New(opts) }

// NewChecker returns a CryptoChecker; a nil rule set means all 13 rules.
func NewChecker(ruleSet []*Rule, opts Options) *CryptoChecker {
	return core.NewChecker(ruleSet, opts)
}

// Rules returns the 13 elicited security rules (Figure 9).
func Rules() []*Rule { return rules.All() }

// CryptoLintRules returns the five CryptoLint reference rules CL1–CL5.
func CryptoLintRules() []*Rule { return rules.CryptoLint() }

// RuleByID resolves R1..R13 or CL1..CL5; nil if unknown.
func RuleByID(id string) *Rule { return rules.ByID(id) }

// SuggestRule builds a rule from a usage change (the automatic rule
// construction of the paper's §6.3).
func SuggestRule(c UsageChange) *Rule { return rules.Suggest(c) }

// ParseRule compiles a textual rule in the paper's Figure 9 notation, e.g.
// `Cipher : getInstance(X) ∧ X=RC4` (ASCII fallbacks && / || / ! / != are
// accepted).
func ParseRule(id, description, formula string) (*Rule, error) {
	return ruledsl.Parse(id, description, formula)
}

// ParseRuleFile compiles an "id | description | formula" rules file.
func ParseRuleFile(content string) ([]*Rule, error) {
	return ruledsl.ParseFile(content)
}

// Filter applies the four-stage filter pipeline and reports per-stage
// counts (paper §4.2).
func Filter(changes []UsageChange) ([]UsageChange, FilterStats) {
	return change.Filter(changes)
}

// Cluster builds the complete-linkage dendrogram over usage changes
// (paper §4.3). Distances run through a fresh memoized engine; the result
// is identical to the uncached computation.
func Cluster(changes []UsageChange) *Dendrogram {
	return cluster.AgglomerateEngine(changes, cluster.Complete, nil, nil, distcache.New(nil))
}

// RenderDendrogram draws an ASCII dendrogram.
func RenderDendrogram(root *Dendrogram, label func(i int) string) string {
	return cluster.Render(root, label)
}

// GenerateCorpus builds the synthetic GitHub-substitute corpus.
func GenerateCorpus(cfg CorpusConfig) *Corpus { return corpus.Generate(cfg) }

// DefaultCorpusConfig is the paper-scale configuration (461 + 58 projects).
func DefaultCorpusConfig() CorpusConfig { return corpus.Default() }

// MineCorpus collects code changes from a corpus's training projects.
func MineCorpus(c *Corpus, minCommits int) []CodeChange {
	return mining.Collect(c, mining.Options{MinCommits: minCommits})
}

// NewEvaluation mines and analyzes a corpus once for figure regeneration.
func NewEvaluation(c *Corpus, opts Options) *Evaluation {
	return core.NewEvaluation(c, opts)
}

// UnifiedDiff renders a "-/+" patch between two sources with ctx lines of
// context (negative keeps everything).
func UnifiedDiff(old, new string, ctx int) string {
	return textdiff.Unified(old, new, ctx)
}

// DiffSources derives the usage changes of a target class between two
// versions of a Java source file: both versions are parsed and abstractly
// interpreted, their usage DAGs paired, and each pair diffed into (F−, F+).
func DiffSources(oldSrc, newSrc, class string, opts Options) []UsageChange {
	d := core.New(opts)
	a, err := d.AnalyzeChange(mining.CodeChange{Old: oldSrc, New: newSrc})
	if err != nil {
		return nil
	}
	return d.ExtractClass(a, class)
}

// BuildDAGs analyzes a Java source and returns the usage DAGs of the given
// class (one per allocation site).
func BuildDAGs(src, class string, opts Options) []*Graph {
	return core.BuildDAGs(src, class, opts)
}

// CheckSource runs CryptoChecker's 13 rules over a single Java source.
func CheckSource(src string, ctx RuleContext, opts Options) []Violation {
	checker := core.NewChecker(nil, opts)
	return checker.CheckSources(map[string]string{"Main.java": src}, ctx)
}

// AnalyzeUsages exposes the abstract usages AUses of a source (primarily
// for tooling and tests).
func AnalyzeUsages(src string, opts Options) *analysis.Result {
	return analysis.AnalyzeSource(src, analysis.Options{})
}
